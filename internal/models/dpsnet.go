package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/workload"
)

// dpsPatches is the number of patches an input image is divided into. With
// the paper's batch size of 128 this folds up to 8192 units onto the batch
// dimension ("DPSNet folds its dynamic dimensions into the batch dimension,
// further increasing the dyn_dim size up to 8192").
const dpsPatches = 64

// DPSNet builds the differentiable-patch-selection network of [12],
// following Figure 5(d): the patch iteration is folded into the batch
// dimension, a scorer network runs over every patch, and a switch keeps the
// informative patches while routing the rest to a sink. Kept patches run the
// heavy backbone; a merge and pooling stage aggregates them per image.
//
// The number of kept patches per image varies widely (objects sit in
// arbitrary regions), so the dyn value at the backbone has both a huge range
// and a large variance — the stress case for multi-kernel sampling.
func DPSNet(batchSamples int) (*Workload, error) {
	if batchSamples < 1 {
		return nil, fmt.Errorf("models: batch %d must be positive", batchSamples)
	}
	const (
		patchPx = 28 // each patch is a 28x28 RGB crop
		scoreCh = 16
		backCh  = 64
	)
	maxU := batchSamples * dpsPatches

	b := graph.NewBuilder("dpsnet", dpsPatches)
	in := b.Input("patches", 3*patchPx*patchPx*2, maxU)
	// Scorer: a light conv over every patch.
	score := b.Conv2D("scorer", in, graph.ConvSpec{
		InC: 3, OutC: scoreCh, H: patchPx, W: patchPx, R: 3, S: 3, Stride: 2, Pad: 1,
	})
	gate := b.Gate("select", score, scoreCh*14*14, 2)
	br := b.Switch("sw", in, gate, 2)

	// Kept patches: the heavy backbone.
	k1 := b.Conv2D("keep_conv1", br[0], graph.ConvSpec{
		InC: 3, OutC: backCh, H: patchPx, W: patchPx, R: 3, S: 3, Stride: 1, Pad: 1,
	})
	k2 := b.Conv2D("keep_conv2", k1, graph.ConvSpec{
		InC: backCh, OutC: backCh, H: patchPx, W: patchPx, R: 3, S: 3, Stride: 2, Pad: 1,
	})
	k3 := b.Conv2D("keep_conv3", k2, graph.ConvSpec{
		InC: backCh, OutC: 2 * backCh, H: 14, W: 14, R: 3, S: 3, Stride: 1, Pad: 1,
	})
	feat := b.Pool("patch_pool", k3, int64(2*backCh)*14*14*2, int64(2*backCh)*2)

	// Dropped patches vanish.
	b.Sink("drop", br[1])

	// Aggregate kept-patch features per image and classify.
	m := b.Merge("gather", []graph.Port{br[0], br[1]}, feat)
	agg := b.Pool("image_pool", m, int64(2*backCh)*2, int64(2*backCh)*2/int64(dpsPatches)+1)
	// The classifier runs once per image; its per-unit (per-patch) work model
	// is the per-image cost divided by the patch count: 128*1000/64 = 2000
	// MACs per unit, expressed as a 128 -> 16 dense layer.
	fc := b.MatMul("fc", agg, 2*backCh, 1000/dpsPatches)
	b.Output("logits", fc)

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name:         "DPSNet",
		Category:     "dynamic region",
		Graph:        g,
		DefaultBatch: batchSamples,
		Gen: &dpsGen{
			swID:     mustFind(b),
			meanKeep: slowDrift(24, 10, 44, 0.45),
		},
		Exclusive: true,
	}, nil
}

func mustFind(b *graph.Builder) graph.OpID {
	id, ok := b.FindOp("sw")
	if !ok {
		panic("models: dpsnet switch missing")
	}
	return id
}

type dpsGen struct {
	swID     graph.OpID
	meanKeep *workload.Drift
}

func (g *dpsGen) Next(src *workload.Source, units int) graph.BatchRouting {
	images := units / dpsPatches
	mean := g.meanKeep.Step(src)
	keep := make([]int, 0, units)
	drop := make([]int, 0, units)
	for img := 0; img < images; img++ {
		// Patch count per image: wide spread (objects sit in arbitrary
		// regions), clamped to [4, 56].
		k := src.NormInt(mean, 10, 4, 56)
		perm := src.Perm(dpsPatches)
		base := img * dpsPatches
		kept := make(map[int]bool, k)
		for _, p := range perm[:k] {
			kept[p] = true
		}
		for p := 0; p < dpsPatches; p++ {
			if kept[p] {
				keep = append(keep, base+p)
			} else {
				drop = append(drop, base+p)
			}
		}
	}
	// Units beyond whole images (none at default batch sizes) are dropped.
	for u := images * dpsPatches; u < units; u++ {
		drop = append(drop, u)
	}
	return graph.BatchRouting{g.swID: {Branch: [][]int{keep, drop}}}
}
