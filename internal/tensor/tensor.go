// Package tensor provides shape algebra and small float32 reference
// implementations of the operators that appear in the evaluated DynNNs.
//
// The simulator never touches tensor *contents* — Adyna's mechanisms depend
// only on shapes and routing masks — but the reference kernels let tests and
// examples verify end-to-end that dynamic switch/merge routing is functionally
// lossless (every sample's data reaches exactly the operators its routing mask
// activates).
package tensor

import (
	"fmt"
	"math"
)

// Shape is an ordered list of dimension extents. Conventions follow the
// paper's operators: activations are [batch, channel, height, width] for CV
// and [batch, sequence, feature] for NLP; weights are operator-specific.
type Shape []int

// NewShape copies dims into a fresh Shape, validating positivity.
// A zero extent is allowed: dynamic branches can receive empty batches.
func NewShape(dims ...int) (Shape, error) {
	for _, d := range dims {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d in %v", d, dims)
		}
	}
	s := make(Shape, len(dims))
	copy(s, dims)
	return s, nil
}

// MustShape is NewShape that panics on error, for literals in tests and
// model builders.
func MustShape(dims ...int) Shape {
	s, err := NewShape(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Elems returns the total element count (zero if any extent is zero).
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Bytes returns the storage size at the given word width.
func (s Shape) Bytes(bytesPerWord int) int64 {
	return s.Elems() * int64(bytesPerWord)
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// WithDim returns a copy of s with dimension i set to v.
func (s Shape) WithDim(i, v int) Shape {
	c := s.Clone()
	c[i] = v
	return c
}

// Eq reports whether two shapes are identical.
func (s Shape) Eq(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s Shape) String() string {
	out := "["
	for i, d := range s {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprint(d)
	}
	return out + "]"
}

// Tensor is a dense float32 tensor in row-major layout.
type Tensor struct {
	Shape Shape
	Data  []float32
}

// New allocates a zero tensor of the given shape.
func New(shape Shape) *Tensor {
	return &Tensor{Shape: shape.Clone(), Data: make([]float32, shape.Elems())}
}

// FromData wraps data in a tensor after checking the element count.
func FromData(shape Shape, data []float32) (*Tensor, error) {
	if int64(len(data)) != shape.Elems() {
		return nil, fmt.Errorf("tensor: %d values for shape %v (%d elems)", len(data), shape, shape.Elems())
	}
	return &Tensor{Shape: shape.Clone(), Data: data}, nil
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape)
	copy(c.Data, t.Data)
	return c
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set writes the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SampleSize returns the number of elements in one batch sample, i.e. the
// product of all dimensions after the first. It is well defined even for an
// empty batch (a dynamic branch that received no samples).
func (t *Tensor) SampleSize() int {
	if len(t.Shape) == 0 {
		return 0
	}
	n := 1
	for _, d := range t.Shape[1:] {
		n *= d
	}
	return n
}

// Sample returns a view (shared storage) of sample b along dimension 0.
func (t *Tensor) Sample(b int) []float32 {
	n := t.SampleSize()
	return t.Data[b*n : (b+1)*n]
}

// GatherBatch builds a new tensor containing the listed batch indices of t,
// in order. It implements the data movement of a switch operator branch.
func (t *Tensor) GatherBatch(idx []int) *Tensor {
	shape := t.Shape.WithDim(0, len(idx))
	out := New(shape)
	n := t.SampleSize()
	for i, b := range idx {
		copy(out.Data[i*n:(i+1)*n], t.Sample(b))
	}
	return out
}

// ScatterBatch writes the samples of src into the listed batch positions of
// t. It implements the data movement of a merge operator.
func (t *Tensor) ScatterBatch(src *Tensor, idx []int) error {
	if len(idx) != src.Shape[0] {
		return fmt.Errorf("tensor: scatter %d indices for %d samples", len(idx), src.Shape[0])
	}
	if src.SampleSize() != t.SampleSize() {
		return fmt.Errorf("tensor: scatter sample size %d into %d", src.SampleSize(), t.SampleSize())
	}
	n := t.SampleSize()
	for i, b := range idx {
		if b < 0 || b >= t.Shape[0] {
			return fmt.Errorf("tensor: scatter index %d outside batch %d", b, t.Shape[0])
		}
		copy(t.Data[b*n:(b+1)*n], src.Sample(i))
	}
	return nil
}

// AddInto accumulates src into the listed batch positions of t (used by
// merges that sum contributions from multiple branches, e.g. top-2 MoE).
func (t *Tensor) AddInto(src *Tensor, idx []int) error {
	if len(idx) != src.Shape[0] {
		return fmt.Errorf("tensor: add %d indices for %d samples", len(idx), src.Shape[0])
	}
	n := t.SampleSize()
	for i, b := range idx {
		dst := t.Data[b*n : (b+1)*n]
		s := src.Sample(i)
		for j := range dst {
			dst[j] += s[j]
		}
	}
	return nil
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) (float64, error) {
	if !a.Shape.Eq(b.Shape) {
		return 0, fmt.Errorf("tensor: diff of %v vs %v", a.Shape, b.Shape)
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m, nil
}
