package tensor

import (
	"fmt"
	"math"
)

// MatMul computes out[b, n] = sum_k in[b, k] * w[k, n] for a batched input
// [B, K] and weight [K, N].
func MatMul(in, w *Tensor) (*Tensor, error) {
	if in.Shape.Rank() != 2 || w.Shape.Rank() != 2 {
		return nil, fmt.Errorf("tensor: matmul needs rank-2 operands, got %v x %v", in.Shape, w.Shape)
	}
	B, K := in.Shape[0], in.Shape[1]
	if w.Shape[0] != K {
		return nil, fmt.Errorf("tensor: matmul inner dims %d vs %d", K, w.Shape[0])
	}
	N := w.Shape[1]
	out := New(MustShape(B, N))
	for b := 0; b < B; b++ {
		inRow := in.Data[b*K : (b+1)*K]
		outRow := out.Data[b*N : (b+1)*N]
		for k := 0; k < K; k++ {
			x := inRow[k]
			if x == 0 {
				continue
			}
			wRow := w.Data[k*N : (k+1)*N]
			for n := 0; n < N; n++ {
				outRow[n] += x * wRow[n]
			}
		}
	}
	return out, nil
}

// Conv2D computes a stride-s same-size-less-border convolution of input
// [B, C, H, W] with weights [M, C, R, S]. Padding is zero and symmetric when
// pad >= 0; output spatial dims are (H+2*pad-R)/stride+1 etc.
func Conv2D(in, w *Tensor, stride, pad int) (*Tensor, error) {
	if in.Shape.Rank() != 4 || w.Shape.Rank() != 4 {
		return nil, fmt.Errorf("tensor: conv2d needs rank-4 operands, got %v x %v", in.Shape, w.Shape)
	}
	B, C, H, W := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	M, CC, R, S := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if C != CC {
		return nil, fmt.Errorf("tensor: conv2d channels %d vs %d", C, CC)
	}
	if stride <= 0 {
		return nil, fmt.Errorf("tensor: conv2d stride %d", stride)
	}
	OH := (H+2*pad-R)/stride + 1
	OW := (W+2*pad-S)/stride + 1
	if OH <= 0 || OW <= 0 {
		return nil, fmt.Errorf("tensor: conv2d output %dx%d not positive", OH, OW)
	}
	out := New(MustShape(B, M, OH, OW))
	for b := 0; b < B; b++ {
		for m := 0; m < M; m++ {
			for oh := 0; oh < OH; oh++ {
				for ow := 0; ow < OW; ow++ {
					var acc float32
					for c := 0; c < C; c++ {
						for r := 0; r < R; r++ {
							ih := oh*stride + r - pad
							if ih < 0 || ih >= H {
								continue
							}
							for s := 0; s < S; s++ {
								iw := ow*stride + s - pad
								if iw < 0 || iw >= W {
									continue
								}
								acc += in.At(b, c, ih, iw) * w.At(m, c, r, s)
							}
						}
					}
					out.Set(acc, b, m, oh, ow)
				}
			}
		}
	}
	return out, nil
}

// ReLU applies max(0, x) elementwise, returning a new tensor.
func ReLU(in *Tensor) *Tensor {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Add returns the elementwise sum of two same-shaped tensors.
func Add(a, b *Tensor) (*Tensor, error) {
	if !a.Shape.Eq(b.Shape) {
		return nil, fmt.Errorf("tensor: add of %v vs %v", a.Shape, b.Shape)
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out, nil
}

// GlobalAvgPool reduces [B, C, H, W] to [B, C] by spatial averaging.
func GlobalAvgPool(in *Tensor) (*Tensor, error) {
	if in.Shape.Rank() != 4 {
		return nil, fmt.Errorf("tensor: pool needs rank-4, got %v", in.Shape)
	}
	B, C, H, W := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	out := New(MustShape(B, C))
	area := float32(H * W)
	for b := 0; b < B; b++ {
		for c := 0; c < C; c++ {
			var sum float32
			for h := 0; h < H; h++ {
				for w := 0; w < W; w++ {
					sum += in.At(b, c, h, w)
				}
			}
			out.Set(sum/area, b, c)
		}
	}
	return out, nil
}

// LayerNorm normalizes the last dimension of a rank-2 or rank-3 tensor to
// zero mean and unit variance (no learned scale/shift, eps 1e-5).
func LayerNorm(in *Tensor) (*Tensor, error) {
	r := in.Shape.Rank()
	if r < 2 {
		return nil, fmt.Errorf("tensor: layernorm needs rank >= 2, got %v", in.Shape)
	}
	last := in.Shape[r-1]
	if last == 0 {
		return in.Clone(), nil
	}
	out := in.Clone()
	rows := int(in.Shape.Elems()) / last
	const eps = 1e-5
	for i := 0; i < rows; i++ {
		row := out.Data[i*last : (i+1)*last]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(last)
		var vari float64
		for _, v := range row {
			d := float64(v) - mean
			vari += d * d
		}
		vari /= float64(last)
		inv := 1 / math.Sqrt(vari+eps)
		for j, v := range row {
			row[j] = float32((float64(v) - mean) * inv)
		}
	}
	return out, nil
}

// Softmax applies softmax over the last dimension.
func Softmax(in *Tensor) (*Tensor, error) {
	r := in.Shape.Rank()
	if r < 1 {
		return nil, fmt.Errorf("tensor: softmax needs rank >= 1")
	}
	last := in.Shape[r-1]
	if last == 0 {
		return in.Clone(), nil
	}
	out := in.Clone()
	rows := int(in.Shape.Elems()) / last
	for i := 0; i < rows; i++ {
		row := out.Data[i*last : (i+1)*last]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			row[j] = float32(e)
			sum += e
		}
		for j := range row {
			row[j] = float32(float64(row[j]) / sum)
		}
	}
	return out, nil
}
