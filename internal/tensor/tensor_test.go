package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeBasics(t *testing.T) {
	s := MustShape(4, 3, 8, 8)
	if s.Rank() != 4 {
		t.Fatalf("rank = %d", s.Rank())
	}
	if s.Elems() != 4*3*8*8 {
		t.Fatalf("elems = %d", s.Elems())
	}
	if s.Bytes(2) != 2*4*3*8*8 {
		t.Fatalf("bytes = %d", s.Bytes(2))
	}
	if s.String() != "[4,3,8,8]" {
		t.Fatalf("string = %q", s.String())
	}
	w := s.WithDim(0, 7)
	if w[0] != 7 || s[0] != 4 {
		t.Fatal("WithDim must not mutate the receiver")
	}
	if !s.Eq(MustShape(4, 3, 8, 8)) || s.Eq(w) || s.Eq(MustShape(4, 3)) {
		t.Fatal("Eq misbehaves")
	}
}

func TestNewShapeRejectsNegative(t *testing.T) {
	if _, err := NewShape(3, -1); err == nil {
		t.Fatal("expected error for negative dim")
	}
}

func TestZeroBatchAllowed(t *testing.T) {
	s := MustShape(0, 16)
	if s.Elems() != 0 {
		t.Fatalf("elems = %d, want 0", s.Elems())
	}
	// Per-sample size stays meaningful for an empty batch so that scatter
	// of an empty branch validates cleanly.
	tt := New(s)
	if tt.SampleSize() != 16 {
		t.Fatalf("sample size = %d, want 16", tt.SampleSize())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(MustShape(2, 3, 4))
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Fatalf("At = %v", got)
	}
	if got := x.At(0, 0, 0); got != 0 {
		t.Fatalf("untouched element = %v", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(MustShape(2, 2)).At(2, 0)
}

func TestFromDataChecksCount(t *testing.T) {
	if _, err := FromData(MustShape(2, 2), []float32{1, 2, 3}); err == nil {
		t.Fatal("expected count mismatch error")
	}
	x, err := FromData(MustShape(2, 2), []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 1) != 4 {
		t.Fatalf("At(1,1) = %v", x.At(1, 1))
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	src := New(MustShape(5, 3))
	for i := range src.Data {
		src.Data[i] = float32(i)
	}
	idx := []int{4, 1, 3}
	g := src.GatherBatch(idx)
	if g.Shape[0] != 3 {
		t.Fatalf("gathered batch = %d", g.Shape[0])
	}
	if g.At(0, 0) != src.At(4, 0) || g.At(2, 2) != src.At(3, 2) {
		t.Fatal("gather copied wrong samples")
	}
	dst := New(MustShape(5, 3))
	if err := dst.ScatterBatch(g, idx); err != nil {
		t.Fatal(err)
	}
	for _, b := range idx {
		for j := 0; j < 3; j++ {
			if dst.At(b, j) != src.At(b, j) {
				t.Fatalf("scatter mismatch at (%d,%d)", b, j)
			}
		}
	}
	// Untouched rows stay zero.
	for j := 0; j < 3; j++ {
		if dst.At(0, j) != 0 || dst.At(2, j) != 0 {
			t.Fatal("scatter wrote rows it should not have")
		}
	}
}

func TestScatterValidation(t *testing.T) {
	dst := New(MustShape(4, 2))
	src := New(MustShape(2, 2))
	if err := dst.ScatterBatch(src, []int{0}); err == nil {
		t.Fatal("expected index-count error")
	}
	if err := dst.ScatterBatch(src, []int{0, 9}); err == nil {
		t.Fatal("expected range error")
	}
	bad := New(MustShape(2, 3))
	if err := dst.ScatterBatch(bad, []int{0, 1}); err == nil {
		t.Fatal("expected sample-size error")
	}
}

func TestAddInto(t *testing.T) {
	dst := New(MustShape(3, 2))
	src := New(MustShape(2, 2))
	for i := range src.Data {
		src.Data[i] = 1
	}
	if err := dst.AddInto(src, []int{1, 1}); err != nil {
		t.Fatal(err)
	}
	if dst.At(1, 0) != 2 {
		t.Fatalf("accumulation = %v, want 2", dst.At(1, 0))
	}
	if dst.At(0, 0) != 0 {
		t.Fatal("untouched row changed")
	}
}

func TestMatMulSmall(t *testing.T) {
	a, _ := FromData(MustShape(2, 3), []float32{1, 2, 3, 4, 5, 6})
	w, _ := FromData(MustShape(3, 2), []float32{7, 8, 9, 10, 11, 12})
	out, err := MatMul(a, w)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("matmul = %v, want %v", out.Data, want)
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(MustShape(2, 3))
	if _, err := MatMul(a, New(MustShape(4, 2))); err == nil {
		t.Fatal("expected inner-dim error")
	}
	if _, err := MatMul(a, New(MustShape(3))); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	in := New(MustShape(1, 1, 4, 4))
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	w := New(MustShape(1, 1, 1, 1))
	w.Data[0] = 1
	out, err := Conv2D(in, w, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Eq(in.Shape) {
		t.Fatalf("shape = %v", out.Shape)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatal("1x1 identity conv must copy input")
		}
	}
}

func TestConv2DSumKernel(t *testing.T) {
	in := New(MustShape(1, 1, 3, 3))
	for i := range in.Data {
		in.Data[i] = 1
	}
	w := New(MustShape(1, 1, 3, 3))
	for i := range w.Data {
		w.Data[i] = 1
	}
	out, err := Conv2D(in, w, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Center sees all 9 ones, corners see 4.
	if got := out.At(0, 0, 1, 1); got != 9 {
		t.Fatalf("center = %v, want 9", got)
	}
	if got := out.At(0, 0, 0, 0); got != 4 {
		t.Fatalf("corner = %v, want 4", got)
	}
}

func TestConv2DStride(t *testing.T) {
	in := New(MustShape(1, 1, 4, 4))
	w := New(MustShape(2, 1, 2, 2))
	out, err := Conv2D(in, w, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Eq(MustShape(1, 2, 2, 2)) {
		t.Fatalf("shape = %v, want [1,2,2,2]", out.Shape)
	}
}

func TestConv2DErrors(t *testing.T) {
	in := New(MustShape(1, 2, 4, 4))
	if _, err := Conv2D(in, New(MustShape(1, 3, 3, 3)), 1, 0); err == nil {
		t.Fatal("expected channel mismatch")
	}
	if _, err := Conv2D(in, New(MustShape(1, 2, 3, 3)), 0, 0); err == nil {
		t.Fatal("expected stride error")
	}
	if _, err := Conv2D(in, New(MustShape(1, 2, 8, 8)), 1, 0); err == nil {
		t.Fatal("expected output-size error")
	}
}

func TestReLU(t *testing.T) {
	x, _ := FromData(MustShape(4), []float32{-1, 0, 2, -3})
	y := ReLU(x)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu = %v", y.Data)
		}
	}
	if x.Data[0] != -1 {
		t.Fatal("ReLU must not mutate input")
	}
}

func TestAdd(t *testing.T) {
	a, _ := FromData(MustShape(2), []float32{1, 2})
	b, _ := FromData(MustShape(2), []float32{10, 20})
	c, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Data[0] != 11 || c.Data[1] != 22 {
		t.Fatalf("add = %v", c.Data)
	}
	if _, err := Add(a, New(MustShape(3))); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := New(MustShape(1, 2, 2, 2))
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out, err := GlobalAvgPool(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.At(0, 0); got != 1.5 { // mean of 0,1,2,3
		t.Fatalf("pool = %v, want 1.5", got)
	}
	if got := out.At(0, 1); got != 5.5 { // mean of 4,5,6,7
		t.Fatalf("pool = %v, want 5.5", got)
	}
}

func TestLayerNormStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := New(MustShape(3, 64))
	for i := range in.Data {
		in.Data[i] = float32(rng.NormFloat64()*3 + 5)
	}
	out, err := LayerNorm(in)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		row := out.Data[r*64 : (r+1)*64]
		var mean, vari float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= 64
		for _, v := range row {
			vari += (float64(v) - mean) * (float64(v) - mean)
		}
		vari /= 64
		if math.Abs(mean) > 1e-4 || math.Abs(vari-1) > 1e-3 {
			t.Fatalf("row %d: mean=%v var=%v", r, mean, vari)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	in, _ := FromData(MustShape(2, 3), []float32{1, 2, 3, -10, 0, 10})
	out, err := Softmax(in)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		var sum float64
		for c := 0; c < 3; c++ {
			v := out.At(r, c)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

// Property: gather followed by scatter into a zero tensor is the identity on
// the gathered rows and zero elsewhere.
func TestQuickGatherScatter(t *testing.T) {
	f := func(seed int64, rawIdx []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const B, F = 16, 5
		src := New(MustShape(B, F))
		for i := range src.Data {
			src.Data[i] = rng.Float32()
		}
		seen := map[int]bool{}
		var idx []int
		for _, r := range rawIdx {
			b := int(r) % B
			if !seen[b] {
				seen[b] = true
				idx = append(idx, b)
			}
		}
		g := src.GatherBatch(idx)
		dst := New(MustShape(B, F))
		if err := dst.ScatterBatch(g, idx); err != nil {
			return false
		}
		for b := 0; b < B; b++ {
			for j := 0; j < F; j++ {
				want := float32(0)
				if seen[b] {
					want = src.At(b, j)
				}
				if dst.At(b, j) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul is linear in its first argument:
// (a1 + a2) W == a1 W + a2 W.
func TestQuickMatMulLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const B, K, N = 3, 4, 5
		mk := func() *Tensor {
			x := New(MustShape(B, K))
			for i := range x.Data {
				x.Data[i] = float32(rng.NormFloat64())
			}
			return x
		}
		a1, a2 := mk(), mk()
		w := New(MustShape(K, N))
		for i := range w.Data {
			w.Data[i] = float32(rng.NormFloat64())
		}
		sum, _ := Add(a1, a2)
		lhs, _ := MatMul(sum, w)
		r1, _ := MatMul(a1, w)
		r2, _ := MatMul(a2, w)
		rhs, _ := Add(r1, r2)
		d, _ := MaxAbsDiff(lhs, rhs)
		return d < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	in := New(MustShape(128, 64))
	w := New(MustShape(64, 64))
	for i := range in.Data {
		in.Data[i] = 1
	}
	for i := range w.Data {
		w.Data[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(in, w); err != nil {
			b.Fatal(err)
		}
	}
}
