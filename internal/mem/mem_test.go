package mem

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestReadTimingMatchesBandwidth(t *testing.T) {
	env := sim.NewEnv()
	cfg := hw.Default()
	h := New(env, cfg)
	var done sim.Time
	env.Go("r", func(p *sim.Proc) {
		h.Read(p, 1842*1000) // one microsecond of full-bandwidth traffic
		done = p.Now()
	})
	env.Run()
	// 1842*1000 bytes at 1842 B/cycle aggregate = ~1000 cycles.
	if done < 950 || done > 1100 {
		t.Fatalf("read took %d cycles, want ~1000", done)
	}
	if h.ReadBytes() != 1842*1000 {
		t.Fatalf("read bytes = %d", h.ReadBytes())
	}
}

func TestContentionQueues(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, hw.Default())
	var t1, t2 sim.Time
	env.Go("a", func(p *sim.Proc) { h.Read(p, 1842*100); t1 = p.Now() })
	env.Go("b", func(p *sim.Proc) { h.Read(p, 1842*100); t2 = p.Now() })
	env.Run()
	if t2 < 2*t1-10 {
		t.Fatalf("no contention: first %d, second %d", t1, t2)
	}
}

func TestWriteAccounting(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, hw.Default())
	env.Go("w", func(p *sim.Proc) {
		h.Write(p, 1000)
		h.Read(p, 500)
	})
	env.Run()
	if h.WriteBytes() != 1000 || h.ReadBytes() != 500 || h.TotalBytes() != 1500 {
		t.Fatalf("accounting wrong: r=%d w=%d", h.ReadBytes(), h.WriteBytes())
	}
	if h.BusyCycles() == 0 {
		t.Fatal("busy cycles must be recorded")
	}
}

func TestZeroTransferFree(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, hw.Default())
	env.Go("z", func(p *sim.Proc) {
		h.Read(p, 0)
		h.Write(p, -5)
		if p.Now() != 0 {
			t.Error("zero/negative transfers must be free")
		}
	})
	env.Run()
	if h.TotalBytes() != 0 {
		t.Fatal("zero transfers must not count")
	}
}

func TestReserveOverlapsPrefetch(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, hw.Default())
	done := h.Reserve(1842 * 50)
	if done != 50 && done != 51 {
		t.Fatalf("reserve completion = %d, want ~50", done)
	}
	// A second reservation queues behind the first.
	done2 := h.Reserve(1842 * 50)
	if done2 < 2*done-5 {
		t.Fatalf("second reserve at %d, want ~%d", done2, 2*done)
	}
}
