// Package mem models the accelerator's off-chip memory: HBM2 stacks with
// per-stack bandwidth (Table III: 6 stacks, 1842 GB/s aggregate). Requests
// are interleaved across stacks; contention appears as queueing on the
// per-stack servers.
//
// Bandwidth bookings are synchronous: Reserve mutates the chosen stack's
// shared sim.Server state (its free-at horizon and served-byte total) at
// the instant of the call, order-sensitively, and returns the arrival time
// without yielding. There is therefore no minimum latency between a tile
// process and the HBM — the property that gives the PDES domain analysis
// (accel.PartitionMachine) a zero tile<->HBM lookahead bound and collapses
// every intra-machine partition to one domain.
package mem

import (
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// HBM is the off-chip memory model.
type HBM struct {
	env      *sim.Env
	stacks   []*sim.Server
	baseRate float64 // per-stack bytes/cycle at construction (healthy chip)
	next     int
	// Accounting.
	readBytes, writeBytes int64
	// rec, when enabled, records every fetch/write-back as a span on track
	// (nil: recording disabled, zero overhead).
	rec   *telemetry.Recorder
	track telemetry.TrackID
}

// New builds the HBM model for cfg.
func New(env *sim.Env, cfg hw.Config) *HBM {
	h := &HBM{env: env, baseRate: cfg.HBMStackBytesPerCycle()}
	for i := 0; i < cfg.HBMStacks; i++ {
		h.stacks = append(h.stacks, sim.NewServer(env, h.baseRate))
	}
	return h
}

// SetRecorder attaches a telemetry recorder: every fetch and write-back is
// recorded as a span covering queueing through drain, with a byte-count arg.
// A nil recorder disables recording at zero cost.
func (h *HBM) SetRecorder(rec *telemetry.Recorder) {
	h.rec = rec
	h.track = rec.Track("hbm")
}

// Derate scales every stack's bandwidth to factor times the construction
// rate (fault injection: lost stacks or a degraded PHY). factor 1 restores
// full bandwidth; requests already in flight keep their completion times.
func (h *HBM) Derate(factor float64) {
	if factor <= 0 || factor > 1 {
		factor = 1
	}
	for _, s := range h.stacks {
		s.SetRate(h.baseRate * factor)
	}
}

// split divides a request across all stacks (address interleaving) and
// returns the per-stack share.
func (h *HBM) split(n int64) int64 {
	per := n / int64(len(h.stacks))
	if per*int64(len(h.stacks)) < n {
		per++
	}
	return per
}

// Read blocks the process until n bytes have been fetched.
func (h *HBM) Read(p *sim.Proc, n int64) {
	if n <= 0 {
		return
	}
	h.readBytes += n
	start := h.env.Now()
	h.transfer(p, n)
	if h.rec.Enabled() {
		h.rec.Span(h.track, "hbm", "read", int64(start), int64(p.Now()), telemetry.I("bytes", n))
	}
}

// Write blocks the process until n bytes have been drained.
func (h *HBM) Write(p *sim.Proc, n int64) {
	if n <= 0 {
		return
	}
	h.writeBytes += n
	start := h.env.Now()
	h.transfer(p, n)
	if h.rec.Enabled() {
		h.rec.Span(h.track, "hbm", "write", int64(start), int64(p.Now()), telemetry.I("bytes", n))
	}
}

func (h *HBM) transfer(p *sim.Proc, n int64) {
	per := h.split(n)
	// All stacks serve their share in parallel; the request completes when
	// the slowest share drains. Reserve on every stack, wait for the max.
	var done sim.Time
	for _, s := range h.stacks {
		if t := s.Reserve(per); t > done {
			done = t
		}
	}
	if done > p.Now() {
		p.Wait(done - p.Now())
	}
}

// Reserve books a read without blocking and returns its completion time
// (used for prefetching weights for the next segment and for streaming
// inputs overlapped with compute).
func (h *HBM) Reserve(n int64) sim.Time {
	if n <= 0 {
		return h.env.Now()
	}
	h.readBytes += n
	done := h.reserve(n)
	if h.rec.Enabled() {
		h.rec.Span(h.track, "hbm", "read", int64(h.env.Now()), int64(done), telemetry.I("bytes", n))
	}
	return done
}

// ReserveWrite books a write-back without blocking (the DMA drains output
// chunks while the PEs continue).
func (h *HBM) ReserveWrite(n int64) sim.Time {
	if n <= 0 {
		return h.env.Now()
	}
	h.writeBytes += n
	done := h.reserve(n)
	if h.rec.Enabled() {
		h.rec.Span(h.track, "hbm", "write", int64(h.env.Now()), int64(done), telemetry.I("bytes", n))
	}
	return done
}

func (h *HBM) reserve(n int64) sim.Time {
	per := h.split(n)
	var done sim.Time
	for _, s := range h.stacks {
		if t := s.Reserve(per); t > done {
			done = t
		}
	}
	return done
}

// TotalBytes returns read+write traffic so far.
func (h *HBM) TotalBytes() int64 { return h.readBytes + h.writeBytes }

// ReadBytes returns the read traffic so far.
func (h *HBM) ReadBytes() int64 { return h.readBytes }

// WriteBytes returns the write traffic so far.
func (h *HBM) WriteBytes() int64 { return h.writeBytes }

// BusyCycles returns the maximum busy time across stacks (the effective
// occupancy for bandwidth-utilization metrics).
func (h *HBM) BusyCycles() sim.Time {
	var m sim.Time
	for _, s := range h.stacks {
		if b := s.BusyCycles(); b > m {
			m = b
		}
	}
	return m
}
