// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section IX), one benchmark per artifact, plus ablation benches for the
// design choices DESIGN.md calls out. Each benchmark runs the corresponding
// experiment at reduced scale (experiments.Quick) so `go test -bench=.`
// finishes in minutes; the cmd/experiments binary runs the same code at full
// scale. Key ratios are attached to the benchmark output via ReportMetric,
// so `go test -bench=.` doubles as a compact reproduction report.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/plancache"
	"repro/internal/power"
	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/workload"
)

// quick returns the reduced-scale options shared by all benches.
func quick() experiments.Options { return experiments.Quick() }

// BenchmarkTable4AreaPower regenerates Table IV (area and power breakdown of
// an Adyna tile) and reports the DynNN-support area overhead (paper: ~4.9%).
func BenchmarkTable4AreaPower(b *testing.B) {
	b.ReportAllocs()
	var overhead float64
	for i := 0; i < b.N; i++ {
		tb := power.Tile(hw.Default())
		a, _ := tb.DynNNOverheadShare()
		overhead = a
	}
	b.ReportMetric(overhead*100, "dynnn-area-%")
	b.ReportMetric(power.ChipPowerW(hw.Default()), "chip-W")
}

// BenchmarkFigure6AllocationTrace regenerates the Figure 6 trace study and
// reports the mean per-batch imbalance of the three allocation strategies.
func BenchmarkFigure6AllocationTrace(b *testing.B) {
	b.ReportAllocs()
	var static, freq, share float64
	for i := 0; i < b.N; i++ {
		fig := experiments.Figure6(1, 60)
		static, freq, share = experiments.Figure6Imbalance(fig)
	}
	b.ReportMetric(static, "static-maxload")
	b.ReportMetric(freq, "freq-maxload")
	b.ReportMetric(share, "share-maxload")
}

// BenchmarkFigure9Overall regenerates the overall performance comparison and
// reports the headline speedups (paper: Adyna 1.70x over M-tile, 1.57x over
// M-tenant, 11.7x over GPU).
func BenchmarkFigure9Overall(b *testing.B) {
	b.ReportAllocs()
	var h experiments.Headlines
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(quick())
		if err != nil {
			b.Fatal(err)
		}
		h = experiments.Figure9Headlines(m)
	}
	b.ReportMetric(h.AdynaVsMTile, "x-vs-mtile")
	b.ReportMetric(h.AdynaVsMTenant, "x-vs-mtenant")
	b.ReportMetric(h.AdynaVsGPU, "x-vs-gpu")
	b.ReportMetric(h.StaticVsMTile, "x-static-vs-mtile")
}

// BenchmarkFigure10Utilization regenerates the PE / memory-bandwidth
// utilization comparison.
func BenchmarkFigure10Utilization(b *testing.B) {
	b.ReportAllocs()
	var peMTile, peAdyna float64
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(quick())
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.Figure10(m)
		var xs, ys []float64
		for _, name := range m.Models {
			xs = append(xs, m.Results[name][core.DesignMTile].PEUtil)
			ys = append(ys, m.Results[name][core.DesignAdyna].PEUtil)
		}
		peMTile, peAdyna = metrics.Geomean(xs), metrics.Geomean(ys)
	}
	b.ReportMetric(peMTile, "pe-util-mtile")
	b.ReportMetric(peAdyna, "pe-util-adyna")
}

// BenchmarkFigure11Energy regenerates the energy breakdown and reports
// Adyna's total energy relative to M-tile (lower is better).
func BenchmarkFigure11Energy(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(quick())
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.Figure11(m)
		var rs []float64
		for _, name := range m.Models {
			ad := m.Results[name][core.DesignAdyna]
			mt := m.Results[name][core.DesignMTile]
			eAd := float64(ad.MACs) + float64(ad.HBMBytes)*26
			eMt := float64(mt.MACs) + float64(mt.HBMBytes)*26
			rs = append(rs, eAd/eMt)
		}
		ratio = metrics.Geomean(rs)
	}
	b.ReportMetric(ratio, "adyna/mtile-energy")
}

// BenchmarkFigure12RealtimeSweep regenerates the real-time-scheduling sweep
// on one representative latency point (the full sweep runs via
// cmd/experiments -exp fig12) and reports the slowdown at the paper's
// crossover latency of 0.39 ms.
func BenchmarkFigure12RealtimeSweep(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		opt := quick()
		rcA := opt.RC
		ad, err := core.Run(core.DesignAdyna, "skipnet", rcA)
		if err != nil {
			b.Fatal(err)
		}
		rcR := opt.RC
		rcR.OnlineSchedCycles = 390_000 // 0.39 ms at 1 GHz
		rt, err := core.Run(core.DesignRealtime, "skipnet", rcR)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rt.CyclesPerBatch() / ad.CyclesPerBatch()
	}
	b.ReportMetric(ratio, "realtime/adyna-at-390us")
}

// BenchmarkFigure13BatchSweep regenerates the batch-size sweep (paper:
// speedups grow 1.29x -> 1.70x from batch 1 to 128) at reduced scale and
// reports the small-batch and large-batch speedups.
func BenchmarkFigure13BatchSweep(b *testing.B) {
	b.ReportAllocs()
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		opt := quick()
		fig, err := experiments.Figure13(opt, []int{4, 64})
		if err != nil {
			b.Fatal(err)
		}
		gm := fig.Series[len(fig.Series)-1] // geomean series
		lo, hi = gm.Y[0], gm.Y[1]
	}
	b.ReportMetric(lo, "speedup-batch4")
	b.ReportMetric(hi, "speedup-batch64")
}

// BenchmarkReconfigOverhead is the Section V-C ablation: reconfiguration
// overhead at the paper's 40-batch period must stay small (paper: <2.4%).
func BenchmarkReconfigOverhead(b *testing.B) {
	b.ReportAllocs()
	var overhead float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunWithPeriod(core.DesignAdyna, "skipnet", quick().RC, 8)
		if err != nil {
			b.Fatal(err)
		}
		overhead = float64(r.ReconfigCycles) / float64(r.Cycles)
	}
	b.ReportMetric(overhead*100, "reconfig-%")
}

// BenchmarkAblationTileSharing compares Adyna with and without tile sharing
// (Section V-B).
func BenchmarkAblationTileSharing(b *testing.B) {
	benchPolicyAblation(b, "skipnet", "sharing-gain-x", func(p *sched.Policy) { p.TileSharing = false })
}

// BenchmarkAblationBranchGrouping compares Adyna with and without branch
// grouping on the skew-heavy FBSNet (Section V-B).
func BenchmarkAblationBranchGrouping(b *testing.B) {
	benchPolicyAblation(b, "fbsnet", "grouping-gain-x", func(p *sched.Policy) { p.BranchGrouping = false })
}

// BenchmarkAblationRuntimeFitting compares Adyna with and without runtime
// kernel-fitting (Section VI-B).
func BenchmarkAblationRuntimeFitting(b *testing.B) {
	benchPolicyAblation(b, "dpsnet", "fitting-gain-x", func(p *sched.Policy) { p.RuntimeFitting = false })
}

// BenchmarkAblationKernelBudget sweeps the per-operator kernel budget
// (Section VII): 1 kernel vs the full 33-kernel budget.
func BenchmarkAblationKernelBudget(b *testing.B) {
	b.ReportAllocs()
	var gain float64
	for i := 0; i < b.N; i++ {
		rc := quick().RC
		one, err := core.RunWithBudget(core.DesignAdyna, "dpsnet", rc, 1)
		if err != nil {
			b.Fatal(err)
		}
		full, err := core.RunWithBudget(core.DesignAdyna, "dpsnet", rc, 33)
		if err != nil {
			b.Fatal(err)
		}
		gain = full.SpeedupOver(one)
	}
	b.ReportMetric(gain, "budget33-vs-1-x")
}

// BenchmarkAblationResamplePeriod sweeps the reconfiguration period
// (Section V-C): frequent vs infrequent re-scheduling on the drifting MoE.
func BenchmarkAblationResamplePeriod(b *testing.B) {
	b.ReportAllocs()
	var gain float64
	for i := 0; i < b.N; i++ {
		rc := quick().RC
		rc.Batches = 48
		fast, err := core.RunWithPeriod(core.DesignAdyna, "tutel-moe", rc, 8)
		if err != nil {
			b.Fatal(err)
		}
		slow, err := core.RunWithPeriod(core.DesignAdyna, "tutel-moe", rc, 48)
		if err != nil {
			b.Fatal(err)
		}
		gain = fast.SpeedupOver(slow)
	}
	b.ReportMetric(gain, "period8-vs-48-x")
}

func benchPolicyAblation(b *testing.B, model, metric string, disable func(*sched.Policy)) {
	b.Helper()
	b.ReportAllocs()
	var gain float64
	for i := 0; i < b.N; i++ {
		rc := quick().RC
		on, err := core.Run(core.DesignAdyna, model, rc)
		if err != nil {
			b.Fatal(err)
		}
		off, err := core.RunWithPolicy(core.DesignAdyna, model, rc, disable)
		if err != nil {
			b.Fatal(err)
		}
		gain = on.SpeedupOver(off)
	}
	b.ReportMetric(gain, metric)
}

// replanInputs builds the scheduler inputs of a representative online
// re-plan: the drifting MoE with a warmed profile on the default chip.
func replanInputs(b *testing.B) (hw.Config, *models.Workload, *profiler.Profiler) {
	b.Helper()
	w, err := models.ByName("tutel-moe", 32)
	if err != nil {
		b.Fatal(err)
	}
	prof := profiler.New(w.Graph)
	src := workload.NewSource(1)
	for _, batch := range w.GenTrace(src, 24, 32) {
		units, err := w.Graph.AssignUnits(batch.Units, batch.Routing)
		if err != nil {
			b.Fatal(err)
		}
		if err := prof.ObserveBatch(units, batch.Routing); err != nil {
			b.Fatal(err)
		}
	}
	return hw.Default(), w, prof
}

// BenchmarkScheduleReplan measures the cost the plan cache exists to avoid:
// one full sched.Schedule solve at a live profile — what every drift or fault
// re-plan pays without the cache.
func BenchmarkScheduleReplan(b *testing.B) {
	cfg, w, prof := replanInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Schedule(cfg, w.Graph, sched.Adyna(), prof); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheLookup measures the replacement cost: a warm exact-key
// cache lookup at the identical inputs (one profile hash plus a map probe).
func BenchmarkPlanCacheLookup(b *testing.B) {
	cfg, w, prof := replanInputs(b)
	c := plancache.New(plancache.NewKeyer(w.Graph, 0), plancache.Config{})
	if _, _, err := c.GetOrSchedule(cfg, w.Graph, sched.Adyna(), prof); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, kind, err := c.GetOrSchedule(cfg, w.Graph, sched.Adyna(), prof)
		if err != nil || kind != plancache.HitExact || plan == nil {
			b.Fatalf("warm lookup: kind=%v err=%v", kind, err)
		}
	}
}

// BenchmarkDensityEvaluate measures the per-batch cost of density-aware
// entity evaluation on the serving hot path: a warm costmodel cache queried
// at a rotating set of densities for one of the GNN's sparse aggregation
// operators. After the first lap every density bucket is memoized, so this
// is the steady-state price each density-carrying batch pays at dispatch.
func BenchmarkDensityEvaluate(b *testing.B) {
	cfg := hw.Default()
	w, err := models.ByName("gcn", 32)
	if err != nil {
		b.Fatal(err)
	}
	dops := w.Graph.DensityOps()
	if len(dops) == 0 {
		b.Fatal("gcn has no density-aware operators")
	}
	op := w.Graph.Op(dops[0])
	blk, _, err := costmodel.Optimize(cfg, op, op.MaxUnits, 8)
	if err != nil {
		b.Fatal(err)
	}
	c := costmodel.NewCache(cfg)
	densities := []float64{1, 0.75, 0.5, 0.3, 0.21}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := densities[i%len(densities)]
		if _, err := c.EvaluateDensity(op, blk, op.MaxUnits, op.MaxUnits/2, 8, true, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllModelsAdyna is a throughput smoke bench: simulate every
// workload under the full Adyna design at reduced scale.
func BenchmarkAllModelsAdyna(b *testing.B) {
	for _, name := range models.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(core.DesignAdyna, name, quick().RC); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
