// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section IX). Each experiment prints the same rows/series the
// paper reports, computed from the simulator.
//
// Usage:
//
//	experiments -exp all                 # everything (slow)
//	experiments -exp fig9                # one experiment
//	experiments -exp fig9 -quick         # reduced scale
//	experiments -exp fig13 -batches 100  # override trace length
//	experiments -exp fig9 -parallel=false  # force the sequential path
//	experiments -exp fig9 -quick -trace out.json  # Perfetto timeline of every run
//
// Independent simulations fan out across all CPUs by default (the results
// are bit-identical to a sequential run; see internal/runner).
//
// Experiments: table3, table4, fig6, fig9, fig10, fig11, fig12, fig13,
// reconfig, budget, sampling, hybrid, dse, latency, simpar, all.
//
// simpar measures the parallel engine: the same fleet scenario stepped
// sequentially and concurrently (byte-identity checked, wall-clock timed)
// and a single-server burst with and without batch pipelining.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (table3,table4,fig6,fig9,fig10,fig11,fig12,fig13,reconfig,budget,sampling,hybrid,dse,latency,simpar,all)")
		quick    = flag.Bool("quick", false, "reduced scale for a fast pass")
		batches  = flag.Int("batches", 0, "override measured batches")
		batch    = flag.Int("batch", 0, "override batch size (samples)")
		seed     = flag.Int64("seed", 1, "workload trace seed")
		parallel = flag.Bool("parallel", true, "fan independent simulations out across all CPUs (results are identical either way)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = one per CPU; implies -parallel)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceOut = flag.String("trace", "", "write a Chrome-trace/Perfetto JSON timeline of every simulation to this file")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	if *batches > 0 {
		opt.RC.Batches = *batches
	}
	if *batch > 0 {
		opt.RC.Batch = *batch
	}
	opt.RC.Seed = *seed
	opt.Workers = *workers
	if !*parallel && *workers == 0 {
		opt.Workers = runner.Serial
	}
	if *traceOut != "" {
		opt.RC.Trace = telemetry.NewTrace()
	}

	if err := run(strings.ToLower(*exp), opt); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		// Flush the profiles before the non-deferred exit.
		if *cpuprof != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, opt.RC.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// writeTrace dumps the telemetry collected across every simulation of the
// run as one Perfetto-loadable JSON file (one process per simulation).
func writeTrace(path string, tr *telemetry.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(exp string, opt experiments.Options) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	start := time.Now()

	if want("table3") {
		fmt.Println(experiments.Table3(opt.RC.HW))
	}
	if want("table4") {
		fmt.Println(experiments.Table4(opt.RC.HW))
	}
	if want("fig6") {
		fig := experiments.Figure6(opt.RC.Seed, 60)
		fmt.Println(fig)
		st, fr, sh := experiments.Figure6Imbalance(fig)
		fmt.Printf("mean per-batch max workload/tile: static=%.2f  freq-weighted=%.2f  +tile-sharing=%.2f\n\n",
			st, fr, sh)
	}

	var m *experiments.Matrix
	needMatrix := want("fig9") || want("fig10") || want("fig11")
	if needMatrix {
		var err error
		m, err = experiments.RunMatrix(opt)
		if err != nil {
			return err
		}
	}
	if want("fig9") {
		fmt.Println(experiments.Figure9(m))
		h := experiments.Figure9Headlines(m)
		fmt.Printf("headlines (paper in parentheses):\n")
		fmt.Printf("  Adyna vs M-tile    %.2fx avg (1.70x), %.2fx max (2.32x)\n", h.AdynaVsMTile, h.AdynaVsMTileMax)
		fmt.Printf("  Adyna vs M-tenant  %.2fx avg (1.57x), %.2fx max (2.01x)\n", h.AdynaVsMTenant, h.AdynaVsMTenantMax)
		fmt.Printf("  Adyna(static) vs M-tile  %.2fx (1.41x); runtime adjustment adds %.2fx (1.21x)\n", h.StaticVsMTile, h.RuntimeGain)
		fmt.Printf("  Adyna reaches %.0f%% of full-kernel (87%%)\n", h.AdynaOfFullKernel*100)
		fmt.Printf("  Adyna vs GPU       %.1fx (11.7x)\n", h.AdynaVsGPU)
		fmt.Printf("  M-tenant vs M-tile %.2fx (1.09x)\n\n", h.MTenantVsMTile)
	}
	if want("fig10") {
		fmt.Println(experiments.Figure10(m))
	}
	if want("fig11") {
		fmt.Println(experiments.Figure11(m))
	}
	if want("fig12") {
		fig, crossover, err := experiments.Figure12(opt, nil)
		if err != nil {
			return err
		}
		fmt.Println(fig)
		fmt.Println(fig.Chart(50))
		if crossover == crossover { // not NaN
			fmt.Printf("crossover: real-time scheduling must decide within %.2f us to match Adyna (paper: 390 us)\n\n", crossover)
		} else {
			fmt.Println("no crossover inside the swept range")
		}
	}
	if want("fig13") {
		sizes := []int{1, 4, 16, 64, 128}
		fig, err := experiments.Figure13(opt, sizes)
		if err != nil {
			return err
		}
		fmt.Println(fig)
	}
	if want("reconfig") {
		t, err := experiments.ReconfigSweep(opt, nil)
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if want("budget") {
		fig, err := experiments.KernelBudgetSweep(opt, nil)
		if err != nil {
			return err
		}
		fmt.Println(fig)
	}
	if want("sampling") {
		fmt.Println(experiments.SamplingDemo(opt.RC.Seed))
	}
	if want("latency") {
		t, err := experiments.LatencyTable(opt, "skipnet")
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if want("dse") {
		t, err := experiments.DSESweep(opt, "skipnet")
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if want("hybrid") {
		t, err := experiments.HybridDemo(opt)
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if want("simpar") {
		t, err := experiments.Simpar(opt, runtime.NumCPU(), 4)
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if exp == "all" {
		fmt.Printf("(all experiments completed in %.1fs; rc: batch=%d batches=%d seed=%d)\n",
			time.Since(start).Seconds(), opt.RC.Batch, opt.RC.Batches, opt.RC.Seed)
	}
	return nil
}
