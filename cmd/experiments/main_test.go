package main

import (
	"testing"

	"repro/internal/experiments"
)

// TestRunLightExperiments smoke-tests the CLI glue for the cheap experiments
// (the heavy figures are exercised by the experiments package tests and the
// root benchmarks).
func TestRunLightExperiments(t *testing.T) {
	opt := experiments.Quick()
	for _, exp := range []string{"table3", "table4", "fig6", "sampling"} {
		if err := run(exp, opt); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	// An unrecognized name matches nothing and must not error.
	if err := run("doesnotexist", experiments.Quick()); err != nil {
		t.Fatal(err)
	}
}
