// Command adyna runs one DynNN workload on one design and prints a run
// summary: throughput, utilizations, traffic, and the energy breakdown.
//
// Usage:
//
//	adyna -model skipnet -design adyna
//	adyna -model dpsnet -design mtile -batch 64 -batches 100
//	adyna -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	var (
		model   = flag.String("model", "skipnet", "workload model (see -list)")
		design  = flag.String("design", "adyna", "machine design: gpu, mtile, mtenant, static, full, adyna, realtime")
		batch   = flag.Int("batch", models.DefaultBatchSize, "batch size (samples)")
		batches = flag.Int("batches", 80, "measured batches")
		seed    = flag.Int64("seed", 1, "workload trace seed")
		list    = flag.Bool("list", false, "list workloads and designs, then exit")
		chipmap = flag.Bool("map", false, "print the scheduled chip map for each segment and exit")
		roof    = flag.Bool("roofline", false, "print the model's roofline analysis and exit")
		density = flag.Float64("density", 0, "fixed density dyn-value in (0,1] for every batch (density-aware models; 0 = model default)")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(models.Names(), ", "), "(plus: adavit, ranet, gcn)")
		fmt.Println("designs:   gpu, mtile, mtenant, static, full, adyna, realtime")
		return
	}

	d, err := core.ParseDesign(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adyna:", err)
		os.Exit(1)
	}
	rc := core.DefaultRunConfig()
	rc.Batch = *batch
	rc.Batches = *batches
	rc.Seed = *seed
	if *density != 0 {
		if *density <= 0 || *density > 1 {
			fmt.Fprintf(os.Stderr, "adyna: -density %v outside (0,1]\n", *density)
			os.Exit(1)
		}
		dens := []float64{*density}
		rc.WrapGen = func(g workload.TraceGen) workload.TraceGen {
			fd, err := workload.NewFixedDensities(g, dens)
			if err != nil {
				return g // unreachable: the value was validated above
			}
			return fd
		}
	}

	if *chipmap {
		if err := printChipMap(*model, rc); err != nil {
			fmt.Fprintln(os.Stderr, "adyna:", err)
			os.Exit(1)
		}
		return
	}
	if *roof {
		if err := printRoofline(*model, rc, *density); err != nil {
			fmt.Fprintln(os.Stderr, "adyna:", err)
			os.Exit(1)
		}
		return
	}

	r, err := core.Run(d, *model, rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adyna:", err)
		os.Exit(1)
	}

	cpb := r.CyclesPerBatch()
	ms := cpb / (rc.HW.ClockGHz * 1e6)
	fmt.Printf("%s on %s (batch %d, %d batches, seed %d)\n", r.Design, r.Model, rc.Batch, rc.Batches, rc.Seed)
	fmt.Printf("  latency        %.0f cycles/batch (%.3f ms at %.0f GHz)\n", cpb, ms, rc.HW.ClockGHz)
	fmt.Printf("  throughput     %.0f samples/s\n", float64(rc.Batch)/(ms/1e3))
	fmt.Printf("  PE utilization %.1f%%   memory BW utilization %.1f%%\n", r.PEUtil*100, r.HBMUtil*100)
	fmt.Printf("  MACs/batch     %.3g issued (%.3g useful, %.1f%% padding waste)\n",
		float64(r.MACs)/float64(r.Batches), float64(r.UsefulMACs)/float64(r.Batches),
		100*(float64(r.MACs)/float64(r.UsefulMACs)-1))
	fmt.Printf("  HBM traffic    %.3g bytes/batch\n", float64(r.HBMBytes)/float64(r.Batches))
	if r.ReconfigCycles > 0 {
		fmt.Printf("  reconfig       %.2f%% of runtime\n", 100*float64(r.ReconfigCycles)/float64(r.Cycles))
	}
	br := energy.Of(energy.Counters{
		MACs: r.MACs, SRAMBytes: r.SRAMBytes, HBMBytes: r.HBMBytes, NoCByteHops: r.NoCByteHops,
	})
	n := float64(r.Batches)
	fmt.Printf("  energy/batch   %.2f mJ (HBM %.2f, SRAM %.2f, PE+NoC %.2f)\n",
		br.Total()/n, br.HBMmJ/n, br.SRAMmJ/n, br.PEmJ/n)
	if lats := batchLatencies(d, *model, rc); len(lats) > 0 {
		fmt.Printf("  batch latency  p50 %.0f  p95 %.0f  p99 %.0f cycles (window-relative)\n",
			metrics.Percentile(lats, 0.50), metrics.Percentile(lats, 0.95), metrics.Percentile(lats, 0.99))
	}
}

// batchLatencies reruns the machine designs briefly to collect per-batch
// completion times (the analytic baselines have no pipeline to measure).
func batchLatencies(d core.Design, model string, rc core.RunConfig) []float64 {
	if d == core.DesignGPU || d == core.DesignMTenant {
		return nil
	}
	w, err := models.ByName(model, rc.Batch)
	if err != nil {
		return nil
	}
	if rc.WrapGen != nil {
		w.Gen = rc.WrapGen(w.Gen)
	}
	m, err := accel.New(rc.HW, w.Graph, accel.Options{})
	if err != nil {
		return nil
	}
	pol := sched.Adyna()
	if d == core.DesignMTile {
		pol = sched.MTile()
	}
	plan, err := sched.Schedule(rc.HW, w.Graph, pol, m.Profiler())
	if err != nil {
		return nil
	}
	if err := m.LoadPlan(plan); err != nil {
		return nil
	}
	src := workload.NewSource(rc.Seed)
	n := rc.Batches
	if n > 40 {
		n = 40
	}
	if err := m.Run(w.GenTrace(src, n, rc.Batch)); err != nil {
		return nil
	}
	var out []float64
	for _, l := range m.Latencies() {
		out = append(out, float64(l.Cycles()))
	}
	return out
}

// printChipMap schedules the model under the full Adyna policy and renders
// every segment's tile placement.
func printChipMap(model string, rc core.RunConfig) error {
	w, err := models.ByName(model, rc.Batch)
	if err != nil {
		return err
	}
	if rc.WrapGen != nil {
		w.Gen = rc.WrapGen(w.Gen)
	}
	m, err := accel.New(rc.HW, w.Graph, accel.Options{})
	if err != nil {
		return err
	}
	src := workload.NewSource(rc.Seed)
	for _, b := range w.GenTrace(src, rc.Warmup, rc.Batch) {
		units, err := w.Graph.AssignUnits(b.Units, b.Routing)
		if err != nil {
			return err
		}
		if err := m.Profiler().ObserveBatchDensity(units, b.Routing, b.Density); err != nil {
			return err
		}
	}
	plan, err := sched.Schedule(rc.HW, w.Graph, sched.Adyna(), m.Profiler())
	if err != nil {
		return err
	}
	for i := range plan.Segments {
		s, err := plan.ChipMap(rc.HW, w.Graph, i)
		if err != nil {
			return err
		}
		fmt.Println(s)
	}
	return nil
}

// printRoofline classifies every compute operator of the model as compute-
// or memory-bound at the worst-case dyn values; a density in (0,1) rescales
// density-aware operators (sparse compute shrinks, dense outputs and weights
// stay), shifting them toward the memory-bound side of the ridge.
func printRoofline(model string, rc core.RunConfig, density float64) error {
	w, err := models.ByName(model, rc.Batch)
	if err != nil {
		return err
	}
	as := costmodel.Roofline(rc.HW, w.Graph, nil)
	if density > 0 && density < 1 {
		as = costmodel.DensityRoofline(rc.HW, w.Graph, nil, density)
	}
	share, total := costmodel.RooflineSummary(as)
	fmt.Printf("%s roofline at batch %d (ridge point %.0f FLOP/byte):\n",
		w.Name, rc.Batch, costmodel.RidgePoint(rc.HW))
	if density > 0 && density < 1 {
		fmt.Printf("density-aware operators rescaled to density %.2f\n", density)
	}
	fmt.Printf("%-18s %12s %12s %12s %s\n", "operator", "GFLOPs", "MBytes", "FLOP/byte", "bound")
	for _, a := range as {
		if a.FLOPs < total/200 {
			continue // skip trivia
		}
		bound := "memory"
		if a.ComputeBound {
			bound = "compute"
		}
		fmt.Printf("%-18s %12.2f %12.2f %12.0f %s\n",
			a.Name, float64(a.FLOPs)/1e9, float64(a.Bytes)/1e6, a.Intensity, bound)
	}
	fmt.Printf("%.0f%% of worst-case FLOPs sit in compute-bound operators (%.1f TFLOPs/batch total)\n",
		share*100, float64(total)/1e12)
	return nil
}
