// Command tracecheck validates a Chrome-trace/Perfetto JSON file produced by
// serve -trace or experiments -trace and prints its summary statistics. CI
// uses it as the trace smoke check: exit status 0 means the file is
// well-formed (valid JSON, every event carrying a phase, name and timestamp,
// non-negative durations, per-track monotonic timestamps) and therefore loads
// in https://ui.perfetto.dev.
//
// Usage:
//
//	tracecheck out.json
//	serve -model moe -trace /dev/stdout -requests 200 | tracecheck -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json|->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, path string) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	st, err := telemetry.Validate(r)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, st)
	return nil
}
