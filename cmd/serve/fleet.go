package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/serve"
)

// fleetOpts carries the fleet-mode flag values.
type fleetOpts struct {
	n        int
	replicas string
	route    string
	faultArg string
	classes  int
	scaleMin int
	walkSD   float64
	workers  int
}

func (o fleetOpts) enabled() bool { return o.n > 0 || o.replicas != "" }

// fleetConfig assembles a fleet.Config from the base server template and the
// fleet flags. The replica spec takes precedence over the plain count.
func fleetConfig(base serve.Config, o fleetOpts) (fleet.Config, error) {
	var specs []fleet.ReplicaSpec
	if o.replicas != "" {
		var err error
		specs, err = fleet.ParseSpec(o.replicas, base.RC.HW)
		if err != nil {
			return fleet.Config{}, err
		}
	} else {
		specs = fleet.HomogeneousSpecs(o.n, base.RC.HW)
	}
	pol, err := fleet.ParsePolicy(o.route)
	if err != nil {
		return fleet.Config{}, err
	}
	cfg := fleet.Config{
		Base:     base,
		Replicas: specs,
		Policy:   pol,
		ScaleMin: o.scaleMin,
		Workers:  o.workers,
	}
	if o.faultArg != "" {
		fs, err := loadFaults(o.faultArg)
		if err != nil {
			return fleet.Config{}, err
		}
		cfg.ReplicaFaults = fs
	}
	return cfg, nil
}

// fleetSource builds the drifting multi-class arrival mix the fleet serves.
// Built fresh per run from the same parameters, so every policy in a
// comparison sees an identical stream.
func fleetSource(model string, o fleetOpts, base serve.Config, requests int, gap float64, seed int64) (*fleet.MixSource, error) {
	return fleet.NewMixSource(fleet.MixConfig{
		Model:         model,
		Classes:       o.classes,
		Requests:      requests,
		Samples:       base.MaxBatch,
		MeanGapCycles: gap,
		Seed:          seed,
		MixWalkSD:     o.walkSD,
	})
}

// runFleet is the fleet-mode entry point: one routing policy, or all three
// on identical arrival streams under -compare.
func runFleet(w io.Writer, base serve.Config, o fleetOpts, requests int, gap float64, seed int64, compare bool, statsOut string) error {
	if !compare {
		cfg, err := fleetConfig(base, o)
		if err != nil {
			return err
		}
		f, err := fleet.New(cfg)
		if err != nil {
			return err
		}
		src, err := fleetSource(base.Model, o, base, requests, gap, seed)
		if err != nil {
			return err
		}
		rep, err := f.Serve(src)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
		if statsOut != "" {
			return writeFleetStats(statsOut, f.Snapshot())
		}
		return nil
	}
	reps := make([]*fleet.Report, 0, 3)
	for _, pol := range fleet.Policies() {
		c := o
		c.route = pol.String()
		cfg, err := fleetConfig(base, c)
		if err != nil {
			return err
		}
		// Distinct trace prefixes keep the three runs' recorders apart in a
		// shared -trace file.
		cfg.Base.RC.TraceName = "fleet/" + pol.String()
		f, err := fleet.New(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", pol, err)
		}
		src, err := fleetSource(base.Model, o, base, requests, gap, seed)
		if err != nil {
			return err
		}
		rep, err := f.Serve(src)
		if err != nil {
			return fmt.Errorf("%s: %w", pol, err)
		}
		reps = append(reps, rep)
		fmt.Fprintln(w, rep)
	}
	fmt.Fprintln(w, fleetCompareTable(reps[0], reps[1], reps[2]))
	return nil
}

// fleetCompareTable renders the three routing policies side by side, with
// plan-affinity's gain over each baseline as a ratio.
func fleetCompareTable(rr, jsq, aff *fleet.Report) *metrics.Table {
	t := &metrics.Table{
		Title:   "Fleet routing policies (same replicas, same arrivals, same seed)",
		Columns: []string{"Metric", "rr", "jsq", "affinity", "vs rr", "vs jsq"},
	}
	ratio := func(a, base float64) string {
		if a == 0 {
			return "-"
		}
		return metrics.F(base/a, 2) + "x"
	}
	t.AddRow("p50 latency", metrics.F(rr.Latency.P50, 0), metrics.F(jsq.Latency.P50, 0), metrics.F(aff.Latency.P50, 0),
		ratio(aff.Latency.P50, rr.Latency.P50), ratio(aff.Latency.P50, jsq.Latency.P50))
	t.AddRow("p99 latency", metrics.F(rr.Latency.P99, 0), metrics.F(jsq.Latency.P99, 0), metrics.F(aff.Latency.P99, 0),
		ratio(aff.Latency.P99, rr.Latency.P99), ratio(aff.Latency.P99, jsq.Latency.P99))
	t.AddRow("shed", fmt.Sprint(rr.Shed), fmt.Sprint(jsq.Shed), fmt.Sprint(aff.Shed), "", "")
	t.AddRow("deadline-missed", fmt.Sprint(rr.Missed), fmt.Sprint(jsq.Missed), fmt.Sprint(aff.Missed), "", "")
	t.AddRow("reschedules", fmt.Sprint(rr.Reschedules+rr.HealthReschedules),
		fmt.Sprint(jsq.Reschedules+jsq.HealthReschedules), fmt.Sprint(aff.Reschedules+aff.HealthReschedules), "", "")
	t.AddRow("shared-plan hits", fmt.Sprint(rr.SharedPlanHits), fmt.Sprint(jsq.SharedPlanHits), fmt.Sprint(aff.SharedPlanHits), "", "")
	if rr.Reroutes+jsq.Reroutes+aff.Reroutes > 0 {
		t.AddRow("reroutes", fmt.Sprint(rr.Reroutes), fmt.Sprint(jsq.Reroutes), fmt.Sprint(aff.Reroutes), "", "")
	}
	if rr.ScaleUps+jsq.ScaleUps+aff.ScaleUps > 0 {
		t.AddRow("scale-ups", fmt.Sprint(rr.ScaleUps), fmt.Sprint(jsq.ScaleUps), fmt.Sprint(aff.ScaleUps), "", "")
	}
	t.AddRow("mean affinity dist", "-", "-", metrics.F(aff.MeanAffinityDist, 4), "", "")
	return t
}

// writeFleetStats dumps the fleet snapshot as JSON to path ('-' for stdout).
func writeFleetStats(path string, snap fleet.Snapshot) error {
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// validateFleetFlags rejects flag combinations fleet mode does not support.
func validateFleetFlags(o fleetOpts, replay, tenants string) error {
	if tenants != "" {
		return fmt.Errorf("-fleet and -tenants are mutually exclusive")
	}
	if replay != "" {
		return fmt.Errorf("-fleet serves the synthetic class mix; -replay is single-server only")
	}
	if o.n > 0 && o.replicas != "" {
		return fmt.Errorf("pass either -fleet N or -fleet-replicas, not both")
	}
	return nil
}
