// Command serve runs the online serving front-end: timestamped requests
// (synthetic Poisson arrivals or a replayed recording) admitted into a
// deadline-aware batcher, executed on a persistent simulated accelerator,
// with drift-triggered re-scheduling keeping the plan matched to the live
// routing distribution.
//
// Usage:
//
//	serve -model skipnet -requests 2000 -gap 9000 -slo 2500000
//	serve -model skipnet -compare              # rescheduling on vs off
//	serve -replay trace.json -gap 500000       # serve a recorded trace
//	serve -model moe -reschedule=false         # static plan forever
//
// The plan-variant cache (-plancache, see internal/plancache) turns re-plans
// into lookups: ahead-of-time precompute at bring-up plus an online cache,
// with -hostresched charging the solver's latency into virtual time on every
// miss. With -compare it pits cached dispatch against fresh-solve adaptive
// serving on the same arrivals:
//
//	serve -model moe -ratewalk 0.1 -plancache -hostresched 500000
//	serve -model moe -plancache -compare
//
// Fault injection (degraded-mode serving) takes a spec string or a JSON
// schedule file; with -compare it pits fault-aware re-scheduling against a
// frozen plan on the same faulty chip:
//
//	serve -model moe -faults 'fail@2e6:tiles=0-35'
//	serve -model moe -faults faults.json -compare
//
// Multi-tenant serving (-tenants) shares one chip between several models,
// each with its own SLO and arrival stream (see internal/mtserve for the
// spec grammar); with -compare it runs the same tenant mix under static
// partitioning, naive time-slicing and drift-aware re-partitioning:
//
//	serve -tenants 'moe:slo=5M:gap=30k,skipnet:slo=8M:gap=60k'
//	serve -tenants 'fbsnet:gap=37k,dpsnet:gap=36k' -mt-mode timeslice
//	serve -tenants 'moe,fbsnet:prio=1' -compare
//
// Fleet scale-out (-fleet, see internal/fleet) serves a drifting
// multi-class arrival mix on K replica chips behind a router; -route picks
// round-robin, join-shortest-queue, or plan-affinity routing, the replicas
// share one plan cache, -fleet-faults kills and repairs whole replicas, and
// with -compare the same arrivals run under all three policies:
//
//	serve -model moe -fleet 4 -route affinity -plancache
//	serve -fleet 4 -compare
//	serve -fleet-replicas 'big:tiles=12x12,small:tiles=6x6:count=2' -route jsq
//	serve -fleet 3 -fleet-faults 'brownout@8e6:tiles=1,repair=1e7' -fleet-min 1
//
// The parallel engine: -simpar N steps fleet replicas concurrently on N
// worker goroutines through a conservative-PDES cluster (internal/sim), and
// -pipeline D overlaps up to D batches on one machine (admission and
// plan-cache lookup for batch k+1 run while batch k computes). Both are
// deterministic — -simpar is byte-identical to the sequential sweep at any
// worker count, -pipeline is byte-identical at any GOMAXPROCS:
//
//	serve -fleet 4 -simpar 4 -plancache
//	serve -model moe -pipeline 4
//
// Observability: -trace writes a Chrome-trace/Perfetto JSON timeline of the
// whole run (open in https://ui.perfetto.dev; see internal/telemetry), and
// -stats-json dumps the final counters/gauges snapshot as JSON:
//
//	serve -model moe -trace out.json
//	serve -model moe -compare -stats-json -
//
// All times are machine cycles (the simulated accelerator clock).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/mtserve"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		model    = flag.String("model", "moe", "workload model to serve (see adyna -list)")
		design   = flag.String("design", "adyna", "machine design: mtile, static, full, adyna, realtime")
		seed     = flag.Int64("seed", 1, "workload trace seed (arrivals derive their own stream from it)")
		requests = flag.Int("requests", 6000, "synthetic requests to serve")
		gap      = flag.Float64("gap", 26000, "mean interarrival gap (cycles)")
		ratewalk = flag.Float64("ratewalk", 0, "per-request std-dev of the arrival-rate random walk (0 = stationary)")
		slo      = flag.Int64("slo", 4_000_000, "per-request deadline from arrival (cycles, 0 = none)")
		maxBatch = flag.Int("maxbatch", 32, "batch-size cap (samples); also the graph's max batch")
		maxWait  = flag.Int64("maxwait", 0, "queue-wait deadline of the oldest request (cycles, 0 = slo/4)")
		queueCap = flag.Int("queuecap", 0, "admission queue bound (samples, 0 = 8x maxbatch)")
		resched  = flag.Bool("reschedule", true, "drift-triggered re-scheduling")
		thresh   = flag.Float64("threshold", 0.02, "profile divergence triggering a re-schedule")
		check    = flag.Int("check", 8, "drift-check cadence (batches)")
		cooldown = flag.Int("cooldown", 40, "min batches between re-schedules")
		warmup   = flag.Int("warmup", 40, "warmup batches profiled before the initial schedule")
		replay   = flag.String("replay", "", "serve a recorded trace file instead of synthetic arrivals")
		tenants  = flag.String("tenants", "", "multi-tenant spec, e.g. 'moe:slo=5M:gap=30k,skipnet:slo=8M' (see internal/mtserve)")
		mtMode   = flag.String("mt-mode", "repartition", "multi-tenant sharing discipline: static, timeslice, repartition")
		minTiles = flag.Int("mintiles", 0, "smallest partition the multi-tenant controller shrinks a tenant to (0 = default)")
		starve   = flag.Float64("starve", 0, "queue-pressure spread marking cross-tenant starvation (0 = default)")
		faultArg = flag.String("faults", "", "fault schedule: a spec string (kind@cycles:k=v,...) or a JSON file")
		pcOn     = flag.Bool("plancache", false, "plan-variant cache: dispatch cached plans on re-schedule instead of solving fresh")
		pcNear   = flag.Bool("plancache-nearest", true, "allow nearest-profile cache hits within -plancache-maxdist")
		pcAOT    = flag.Bool("plancache-aot", true, "precompute plan variants at bring-up (profile lattice + fault windows)")
		pcDist   = flag.Float64("plancache-maxdist", 0, "max quantized-profile distance for a nearest hit (0 = default)")
		pcTiles  = flag.Bool("plancache-aot-tiles", false, "AOT additionally pre-solves every single-tile-loss variant")
		hostCyc  = flag.Int64("hostresched", 0, "host solve latency charged into virtual time per plan-cache miss (cycles)")
		pipeline = flag.Int("pipeline", 0, "batch pipeline depth: overlap up to N batches on the machine (<=1 = legacy blocking loop)")
		simpar   = flag.Int("simpar", 1, "fleet mode: worker goroutines stepping replicas concurrently (results byte-identical at any count)")
		fleetN   = flag.Int("fleet", 0, "serve across N identical replicas behind a router (0 = single server)")
		fleetRep = flag.String("fleet-replicas", "", "heterogeneous fleet spec, e.g. 'big:tiles=12x12,edge:tiles=4x4:count=2' (see internal/fleet)")
		route    = flag.String("route", "affinity", "fleet routing policy: rr, jsq, affinity")
		fleetFlt = flag.String("fleet-faults", "", "replica-level fault schedule (tile indices name replicas): spec string or JSON file")
		fleetCls = flag.Int("fleet-classes", 3, "traffic classes in the fleet's drifting arrival mix")
		fleetMin = flag.Int("fleet-min", 0, "elastic scaling: start with this many active replicas (0 = all, no scaling)")
		fleetSD  = flag.Float64("fleet-walk", 0.1, "per-request random-walk std-dev of the fleet's class mixture weights")
		densWalk = flag.Float64("denswalk", 0, "override the model's density source: per-batch std-dev of a density random walk (density-aware models, 0 = model default)")
		densCtr  = flag.Float64("denscenter", 0.5, "starting density of the -denswalk walk, in (0,1]")
		densTr   = flag.String("densities", "", "explicit per-batch density trace, e.g. '0.9x40,0.2x40' (cycled; overrides -denswalk)")
		compare  = flag.Bool("compare", false, "run twice (rescheduling on and off) and report both")
		traceOut = flag.String("trace", "", "write a Chrome-trace/Perfetto JSON timeline of the run to this file")
		statsOut = flag.String("stats-json", "", "write the final counters/gauges snapshot as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	d, err := core.ParseDesign(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	wrapGen, err := densityWrap(*densTr, *densWalk, *densCtr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if *tenants != "" {
		if *replay != "" || *statsOut != "" {
			fmt.Fprintln(os.Stderr, "serve: -replay and -stats-json are single-tenant only (drop -tenants)")
			os.Exit(1)
		}
		if *pipeline > 1 {
			fmt.Fprintln(os.Stderr, "serve: -pipeline is single-tenant only (the multi-tenant scheduler drains between slices)")
			os.Exit(1)
		}
		// -threshold/-check/-cooldown defaults are tuned for the single-tenant
		// server; pass them through only when set so mtserve keeps its own.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		mcfg := mtserve.Config{
			Design:            d,
			RC:                core.DefaultRunConfig(),
			MaxBatch:          *maxBatch,
			QueueCapSamples:   *queueCap,
			MinTiles:          *minTiles,
			StarvePressure:    *starve,
			PlanCache:         *pcOn,
			PlanCacheNearest:  *pcNear,
			PlanCacheMaxDist:  *pcDist,
			PlanCacheAOT:      *pcAOT,
			HostReschedCycles: *hostCyc,
		}
		if set["threshold"] {
			mcfg.DriftThreshold = *thresh
		}
		if set["check"] {
			mcfg.CheckEvery = *check
		}
		if set["cooldown"] {
			mcfg.CooldownBatches = *cooldown
		}
		mcfg.RC.Batch = *maxBatch
		mcfg.RC.Warmup = *warmup
		mcfg.RC.Seed = *seed
		mcfg.RC.WrapGen = wrapGen
		if *faultArg != "" {
			fs, err := loadFaults(*faultArg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				os.Exit(1)
			}
			mcfg.Faults = fs
		}
		if *traceOut != "" {
			mcfg.RC.Trace = telemetry.NewTrace()
		}
		def := mtserve.Tenant{
			SLOCycles:     *slo,
			MaxWaitCycles: *maxWait,
			MeanGapCycles: *gap,
			Requests:      *requests,
			RateWalkSD:    *ratewalk,
		}
		if err := runTenants(os.Stdout, mcfg, *tenants, *mtMode, def, *compare); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		if *traceOut != "" {
			if err := writeTrace(*traceOut, mcfg.RC.Trace); err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				os.Exit(1)
			}
		}
		return
	}
	cfg := serve.Config{
		Model:                  *model,
		Design:                 d,
		RC:                     core.DefaultRunConfig(),
		MaxBatch:               *maxBatch,
		MaxWaitCycles:          *maxWait,
		SLOCycles:              *slo,
		QueueCapSamples:        *queueCap,
		PipelineDepth:          *pipeline,
		Reschedule:             *resched,
		DriftThreshold:         *thresh,
		CheckEvery:             *check,
		CooldownBatches:        *cooldown,
		PlanCache:              *pcOn,
		PlanCacheNearest:       *pcNear,
		PlanCacheMaxDist:       *pcDist,
		PlanCacheAOT:           *pcAOT,
		PlanCacheAOTSingleTile: *pcTiles,
		HostReschedCycles:      *hostCyc,
	}
	cfg.RC.Batch = *maxBatch
	cfg.RC.Warmup = *warmup
	cfg.RC.Seed = *seed
	cfg.RC.WrapGen = wrapGen

	if *faultArg != "" {
		fs, err := loadFaults(*faultArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		cfg.Faults = fs
	}

	if *traceOut != "" {
		cfg.RC.Trace = telemetry.NewTrace()
	}
	fo := fleetOpts{
		n:        *fleetN,
		replicas: *fleetRep,
		route:    *route,
		faultArg: *fleetFlt,
		classes:  *fleetCls,
		scaleMin: *fleetMin,
		walkSD:   *fleetSD,
		workers:  *simpar,
	}
	if !fo.enabled() && *simpar > 1 {
		fmt.Fprintln(os.Stderr, "serve: -simpar needs a fleet (-fleet or -fleet-replicas); a single simulation has no concurrent replicas")
		os.Exit(1)
	}
	if fo.enabled() {
		if err := validateFleetFlags(fo, *replay, *tenants); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		if err := runFleet(os.Stdout, cfg, fo, *requests, *gap, *seed, *compare, *statsOut); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		if *traceOut != "" {
			if err := writeTrace(*traceOut, cfg.RC.Trace); err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(os.Stdout, cfg, *replay, *requests, *gap, *ratewalk, *seed, *compare, *statsOut); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, cfg.RC.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}
}

// writeTrace dumps the collected telemetry as a Perfetto-loadable JSON file.
func writeTrace(path string, tr *telemetry.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeStats renders snapshots as JSON to path ('-' for stdout). A single
// run writes its snapshot object; -compare writes both keyed by mode.
func writeStats(path string, snaps map[string]serve.Snapshot) error {
	var v any = snaps
	if s, ok := snaps["run"]; ok && len(snaps) == 1 {
		v = s
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// loadFaults reads the -faults argument: a path to a JSON schedule when it
// names a readable file, the compact spec syntax otherwise.
func loadFaults(arg string) (*faults.Schedule, error) {
	if f, err := os.Open(arg); err == nil {
		defer f.Close()
		return faults.Load(f)
	}
	if strings.Contains(arg, ".json") {
		return nil, fmt.Errorf("fault schedule file %q not readable", arg)
	}
	return faults.ParseSpec(arg)
}

// densityWrap translates the density flags into the core.RunConfig generator
// hook: an explicit trace (-densities) wins over a walk (-denswalk); with
// neither set the model keeps its own density behaviour (nil hook). The hook
// builds a fresh wrapper per bring-up, so compare runs and multi-tenant
// bring-ups never share walk state.
func densityWrap(trace string, walkSD, center float64) (func(workload.TraceGen) workload.TraceGen, error) {
	if trace != "" {
		ds, err := workload.ParseDensityTrace(trace)
		if err != nil {
			return nil, err
		}
		return func(g workload.TraceGen) workload.TraceGen {
			fd, err := workload.NewFixedDensities(g, ds)
			if err != nil {
				return g // unreachable: the trace was validated by the parser
			}
			return fd
		}, nil
	}
	if walkSD > 0 {
		if center <= 0 || center > 1 {
			return nil, fmt.Errorf("density center %v outside (0,1]", center)
		}
		return func(g workload.TraceGen) workload.TraceGen {
			return workload.NewDensityWalk(g, center, 0, 1, walkSD)
		}, nil
	}
	return nil, nil
}

// newSource builds the request stream; arrivals use their own deterministic
// seed so the stream is identical across server configurations.
func newSource(replay string, requests int, gap, ratewalk float64, seed int64) (serve.Source, error) {
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rec, err := workload.LoadRecording(f)
		if err != nil {
			return nil, err
		}
		return serve.NewReplay(rec, gap, seed+1)
	}
	var rate *workload.Drift
	if ratewalk > 0 {
		rate = workload.NewDrift(1, 0.25, 2.5, ratewalk)
	}
	return serve.NewSynthetic(requests, gap, seed+1, rate), nil
}

func run(w io.Writer, cfg serve.Config, replay string, requests int, gap, ratewalk float64, seed int64, compare bool, statsOut string) error {
	if replay != "" {
		// The server must be brought up for the recording's model and batch.
		f, err := os.Open(replay)
		if err != nil {
			return err
		}
		rec, err := workload.LoadRecording(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Model = rec.Model
		cfg.RC.Batch = rec.BatchSamples
		cfg.MaxBatch = rec.BatchSamples
	}
	if !compare {
		srv, rep, err := serveOnce(cfg, replay, requests, gap, ratewalk, seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
		if statsOut != "" {
			return writeStats(statsOut, map[string]serve.Snapshot{"run": srv.Snapshot()})
		}
		return nil
	}
	on, off := cfg, cfg
	on.Reschedule = true
	title := "Drift-triggered re-scheduling vs static plan (same arrivals, same seed)"
	adaptive, baseline := "reschedule", "static"
	onName, offName := "adaptive", "static"
	if cfg.PlanCache {
		// With the plan cache on, the interesting baseline is not a frozen
		// plan but the same adaptive policy paying a fresh solve per trigger.
		off.Reschedule = true
		off.PlanCache = false
		title = "Plan-cache dispatch vs fresh-solve re-scheduling (same arrivals, same seed)"
		adaptive, baseline = "cached", "fresh"
		onName, offName = "cached", "fresh"
	} else {
		off.Reschedule = false
		if !cfg.Faults.Empty() {
			title = "Fault-aware re-scheduling vs frozen plan (same arrivals, same faults, same seed)"
			adaptive = "fault-aware"
		}
	}
	// The two runs share a design/model pair; explicit trace names keep their
	// recorders apart in the merged -trace file.
	on.RC.TraceName = string(cfg.Design) + "/" + cfg.Model + "/" + onName
	off.RC.TraceName = string(cfg.Design) + "/" + cfg.Model + "/" + offName
	srvOn, repOn, err := serveOnce(on, replay, requests, gap, ratewalk, seed)
	if err != nil {
		return err
	}
	srvOff, repOff, err := serveOnce(off, replay, requests, gap, ratewalk, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, repOn)
	fmt.Fprintln(w, repOff)
	t := &metrics.Table{
		Title:   title,
		Columns: []string{"Metric", adaptive, baseline, "improvement"},
	}
	ratio := func(a, b float64) string {
		if a == 0 {
			return "-"
		}
		return metrics.F(b/a, 2) + "x"
	}
	t.AddRow("p50 latency", metrics.F(repOn.Latency.P50, 0), metrics.F(repOff.Latency.P50, 0), ratio(repOn.Latency.P50, repOff.Latency.P50))
	t.AddRow("p99 latency", metrics.F(repOn.Latency.P99, 0), metrics.F(repOff.Latency.P99, 0), ratio(repOn.Latency.P99, repOff.Latency.P99))
	t.AddRow("shed rate", metrics.F(repOn.ShedRate()*100, 1)+"%", metrics.F(repOff.ShedRate()*100, 1)+"%", ratio(repOn.ShedRate(), repOff.ShedRate()))
	t.AddRow("miss rate", metrics.F(repOn.MissRate()*100, 1)+"%", metrics.F(repOff.MissRate()*100, 1)+"%", ratio(repOn.MissRate(), repOff.MissRate()))
	t.AddRow("deadline-missed", fmt.Sprint(repOn.Missed), fmt.Sprint(repOff.Missed), "")
	t.AddRow("reschedules", fmt.Sprint(repOn.Reschedules), fmt.Sprint(repOff.Reschedules), "")
	if !cfg.Faults.Empty() {
		t.AddRow("health reschedules", fmt.Sprint(repOn.HealthReschedules), fmt.Sprint(repOff.HealthReschedules), "")
	}
	if cfg.PlanCache {
		t.AddRow("plan-cache hits", fmt.Sprint(repOn.PlanCacheExact+repOn.PlanCacheNearest), "0", "")
		t.AddRow("host solve cycles", fmt.Sprint(repOn.HostSolveCycles), fmt.Sprint(repOff.HostSolveCycles), "")
	}
	fmt.Fprintln(w, t)
	if statsOut != "" {
		return writeStats(statsOut, map[string]serve.Snapshot{
			onName: srvOn.Snapshot(), offName: srvOff.Snapshot(),
		})
	}
	return nil
}

// runTenants is the multi-tenant entry point: one sharing discipline, or
// all three on identical arrival streams under -compare.
func runTenants(w io.Writer, cfg mtserve.Config, spec, mode string, def mtserve.Tenant, compare bool) error {
	tens, err := mtserve.ParseSpec(spec, def)
	if err != nil {
		return err
	}
	if !compare {
		m, err := mtserve.ParseMode(mode)
		if err != nil {
			return err
		}
		cfg.Mode = m
		cfg.Tenants = tens
		rep, err := mtServeOnce(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
		return nil
	}
	modes := []mtserve.Mode{mtserve.ModeStatic, mtserve.ModeTimeSlice, mtserve.ModeRepartition}
	reps := make([]*mtserve.Report, len(modes))
	for i, m := range modes {
		c := cfg
		c.Mode = m
		// Per-tenant seeds derive from the spec index, so every mode sees the
		// same arrival streams; distinct trace names keep the three runs'
		// recorders apart in a shared -trace file. New mutates tenant specs
		// (naming, defaults), so each run gets its own copy.
		c.RC.TraceName = "mt/" + m.String()
		c.Tenants = append([]mtserve.Tenant(nil), tens...)
		rep, err := mtServeOnce(c)
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		reps[i] = rep
		fmt.Fprintln(w, rep)
	}
	fmt.Fprintln(w, mtCompareTable(reps[0], reps[1], reps[2], !cfg.Faults.Empty()))
	return nil
}

// mtCompareTable renders the three sharing disciplines side by side, with
// the re-partitioning controller's gain over each baseline as a ratio.
func mtCompareTable(st, sl, re *mtserve.Report, faulty bool) *metrics.Table {
	t := &metrics.Table{
		Title:   "Chip sharing disciplines (same tenants, same arrivals, same seed)",
		Columns: []string{"Metric", "static", "timeslice", "repartition", "vs static", "vs slice"},
	}
	ratio := func(repart, base float64) string {
		if repart == 0 {
			return "-"
		}
		return metrics.F(base/repart, 2) + "x"
	}
	t.AddRow("p50 latency", metrics.F(st.Aggregate.P50, 0), metrics.F(sl.Aggregate.P50, 0), metrics.F(re.Aggregate.P50, 0),
		ratio(re.Aggregate.P50, st.Aggregate.P50), ratio(re.Aggregate.P50, sl.Aggregate.P50))
	t.AddRow("p99 latency", metrics.F(st.Aggregate.P99, 0), metrics.F(sl.Aggregate.P99, 0), metrics.F(re.Aggregate.P99, 0),
		ratio(re.Aggregate.P99, st.Aggregate.P99), ratio(re.Aggregate.P99, sl.Aggregate.P99))
	t.AddRow("mean latency", metrics.F(st.Aggregate.Mean, 0), metrics.F(sl.Aggregate.Mean, 0), metrics.F(re.Aggregate.Mean, 0),
		ratio(re.Aggregate.Mean, st.Aggregate.Mean), ratio(re.Aggregate.Mean, sl.Aggregate.Mean))
	t.AddRow("shed", fmt.Sprint(st.Shed), fmt.Sprint(sl.Shed), fmt.Sprint(re.Shed), "", "")
	t.AddRow("deadline-missed", fmt.Sprint(st.Missed), fmt.Sprint(sl.Missed), fmt.Sprint(re.Missed), "", "")
	t.AddRow("repartitions", fmt.Sprint(st.Repartitions), fmt.Sprint(sl.Repartitions), fmt.Sprint(re.Repartitions), "", "")
	t.AddRow("reschedules", fmt.Sprint(st.Reschedules), fmt.Sprint(sl.Reschedules), fmt.Sprint(re.Reschedules), "", "")
	t.AddRow("reconfig cycles", fmt.Sprint(st.ReconfigCycles), fmt.Sprint(sl.ReconfigCycles), fmt.Sprint(re.ReconfigCycles), "", "")
	if faulty {
		t.AddRow("fault events", fmt.Sprint(st.FaultEvents), fmt.Sprint(sl.FaultEvents), fmt.Sprint(re.FaultEvents), "", "")
	}
	return t
}

func mtServeOnce(cfg mtserve.Config) (*mtserve.Report, error) {
	s, err := mtserve.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Serve()
}

func serveOnce(cfg serve.Config, replay string, requests int, gap, ratewalk float64, seed int64) (*serve.Server, *serve.Report, error) {
	src, err := newSource(replay, requests, gap, ratewalk, seed)
	if err != nil {
		return nil, nil, err
	}
	s, err := serve.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	rep, err := s.Serve(src)
	if err != nil {
		return nil, nil, err
	}
	return s, rep, nil
}
