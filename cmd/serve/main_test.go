package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mtserve"
	"repro/internal/serve"
)

func smokeConfig() serve.Config {
	cfg := serve.Config{
		Model:           "skipnet",
		Design:          core.DesignAdyna,
		RC:              core.DefaultRunConfig(),
		MaxBatch:        8,
		SLOCycles:       3_000_000,
		Reschedule:      true,
		DriftThreshold:  0.02,
		CheckEvery:      8,
		CooldownBatches: 16,
	}
	cfg.RC.Batch = 8
	cfg.RC.Warmup = 10
	cfg.RC.Seed = 1
	return cfg
}

func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, smokeConfig(), "", 60, 60_000, 0, 1, false, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "requests") {
		t.Fatalf("report missing from output:\n%s", buf.String())
	}
}

func TestRunCompareSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, smokeConfig(), "", 60, 60_000, 0, 1, true, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Drift-triggered re-scheduling vs static plan") {
		t.Fatalf("drift compare table missing:\n%s", out)
	}
	if strings.Contains(out, "health reschedules") {
		t.Fatalf("fault-only row printed without faults:\n%s", out)
	}
}

func TestRunCompareWithFaults(t *testing.T) {
	cfg := smokeConfig()
	fs, err := loadFaults("fail@2e6:tiles=0-35")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fs
	var buf bytes.Buffer
	if err := run(&buf, cfg, "", 100, 80_000, 0, 1, true, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fault-aware re-scheduling vs frozen plan") {
		t.Fatalf("fault compare table missing:\n%s", out)
	}
	for _, row := range []string{"fault-aware", "health reschedules", "deadline-missed"} {
		if !strings.Contains(out, row) {
			t.Fatalf("row %q missing:\n%s", row, out)
		}
	}
}

func mtSmokeConfig() mtserve.Config {
	cfg := mtserve.Config{
		Design:   core.DesignAdyna,
		RC:       core.DefaultRunConfig(),
		MaxBatch: 8,
	}
	cfg.RC.Batch = 8
	cfg.RC.Warmup = 8
	cfg.RC.Seed = 1
	return cfg
}

func TestRunTenantsSmoke(t *testing.T) {
	def := mtserve.Tenant{SLOCycles: 5_000_000, MeanGapCycles: 80_000, Requests: 40}
	var buf bytes.Buffer
	if err := runTenants(&buf, mtSmokeConfig(), "skipnet,fbsnet:prio=1", "static", def, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Multi-tenant serving (static", "skipnet", "fbsnet"} {
		if !strings.Contains(out, want) {
			t.Fatalf("%q missing from report:\n%s", want, out)
		}
	}
	if err := runTenants(&buf, mtSmokeConfig(), "skipnet", "no-such-mode", def, false); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := runTenants(&buf, mtSmokeConfig(), "", "static", def, false); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestRunTenantsCompareSmoke(t *testing.T) {
	def := mtserve.Tenant{SLOCycles: 5_000_000, MeanGapCycles: 80_000, Requests: 40}
	var buf bytes.Buffer
	if err := runTenants(&buf, mtSmokeConfig(), "skipnet,fbsnet", "", def, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Multi-tenant serving (static", "Multi-tenant serving (timeslice",
		"Multi-tenant serving (repartition", "Chip sharing disciplines",
		"p99 latency", "repartitions",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("%q missing from compare output:\n%s", want, out)
		}
	}
}

func TestLoadFaults(t *testing.T) {
	fs, err := loadFaults("fail@1e6:tiles=0-3;hbm@2e6:factor=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Events) != 2 {
		t.Fatalf("spec parsed to %d events, want 2", len(fs.Events))
	}

	// A JSON schedule file round-trips through Save/Load.
	path := filepath.Join(t.TempDir(), "faults.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadFaults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 2 {
		t.Fatalf("file loaded %d events, want 2", len(got.Events))
	}

	if _, err := loadFaults("missing-schedule.json"); err == nil {
		t.Fatal("unreadable .json file accepted")
	}
	if _, err := loadFaults("melt@1e6"); err == nil {
		t.Fatal("bad spec accepted")
	}
}
