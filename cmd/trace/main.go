// Command trace generates, inspects, and replays DynNN routing traces.
//
// Usage:
//
//	trace -model skipnet -batches 40 -out trace.json     # record a trace
//	trace -stats trace.json                              # inspect a recording
//	trace -model dpsnet -batches 20 -stats -             # generate + inspect
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/models"
	"repro/internal/workload"
)

func main() {
	var (
		model   = flag.String("model", "skipnet", "workload model to record (see adyna -list)")
		batch   = flag.Int("batch", models.DefaultBatchSize, "batch size (samples)")
		batches = flag.Int("batches", 40, "number of batches to record")
		seed    = flag.Int64("seed", 1, "workload trace seed")
		out     = flag.String("out", "", "write the recording to this file")
		stats   = flag.String("stats", "", "print statistics of a recorded trace file, or '-' to inspect the generated trace")
	)
	flag.Parse()
	if err := run(*model, *batch, *batches, *seed, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run(model string, batch, nBatches int, seed int64, out, stats string) error {
	var (
		rec *workload.Recording
		w   *models.Workload
		err error
	)
	switch {
	case stats != "" && stats != "-":
		f, err := os.Open(stats)
		if err != nil {
			return err
		}
		defer f.Close()
		rec, err = workload.LoadRecording(f)
		if err != nil {
			return err
		}
		w, err = models.ByName(rec.Model, rec.BatchSamples)
		if err != nil {
			return err
		}
	default:
		w, err = models.ByName(model, batch)
		if err != nil {
			return err
		}
		src := workload.NewSource(seed)
		tr := w.GenTrace(src, nBatches, batch)
		if err := workload.Validate(w.Graph, tr, w.Exclusive); err != nil {
			return err
		}
		rec = workload.Record(model, batch, seed, tr)
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.Save(f); err != nil {
			return err
		}
		fmt.Printf("recorded %d batches of %s (batch %d, seed %d) to %s\n",
			len(rec.Batches), rec.Model, rec.BatchSamples, rec.Seed, out)
	}

	if stats != "" {
		tr, err := rec.Replay()
		if err != nil {
			return err
		}
		sts, err := workload.Stats(w.Graph, tr)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d batches, %d units/batch, %d switches\n\n",
			rec.Model, len(tr), w.BatchUnits(rec.BatchSamples), len(sts))
		for _, st := range sts {
			op := w.Graph.Op(st.Switch)
			fmt.Printf("switch %-12s arrived %.1f units/batch\n", op.Name, st.MeanArrived)
			for k := range st.BranchMean {
				fmt.Printf("  branch %d: mean %.1f units, active %.0f%% of batches\n",
					k, st.BranchMean[k], st.BranchActive[k]*100)
			}
		}
	}
	if out == "" && stats == "" {
		return fmt.Errorf("nothing to do: pass -out and/or -stats")
	}
	return nil
}
