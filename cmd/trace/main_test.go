package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRecordThenInspect(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.json")
	if err := run("skipnet", 8, 3, 1, out, ""); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("recording missing: %v", err)
	}
	if err := run("", 0, 0, 0, "", out); err != nil {
		t.Fatalf("inspecting the recording: %v", err)
	}
}

func TestGenerateAndInspectInline(t *testing.T) {
	if err := run("tutel-moe", 8, 2, 3, "", "-"); err != nil {
		t.Fatal(err)
	}
}

func TestNothingToDo(t *testing.T) {
	if err := run("skipnet", 8, 2, 1, "", ""); err == nil {
		t.Fatal("expected nothing-to-do error")
	}
}

func TestUnknownModel(t *testing.T) {
	if err := run("nope", 8, 2, 1, "", "-"); err == nil {
		t.Fatal("unknown model accepted")
	}
}
