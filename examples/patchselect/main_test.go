package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestPatchSelectQuickSweep smoke-tests both sweeps at reduced scale.
func TestPatchSelectQuickSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DPSNet", "speedup", "kernels per operator"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Both batch rows of the quick sweep must have run.
	if !strings.Contains(out, "\n4 ") || !strings.Contains(out, "\n16 ") {
		t.Fatalf("sweep rows missing:\n%s", out)
	}
}
