// Patch selection at scale: DPSNet folds 64 patches per image onto the
// batch dimension, so at batch 128 the dynamic dimension reaches 8192 —
// the stress case for multi-kernel sampling. This example sweeps batch
// sizes (the paper's Figure 13 axis) and shows how Adyna's advantage over
// the worst-case M-tile baseline grows with batch size, then demonstrates
// the kernel-budget tradeoff of Section VII.
package main

import (
	"fmt"
	"log"

	"repro/adyna"
)

func main() {
	rc := adyna.DefaultRunConfig()
	rc.Batches = 40
	rc.Warmup = 16

	fmt.Println("DPSNet (64 patches/image folded onto the batch dimension)")
	fmt.Println()
	fmt.Printf("%-10s %12s %16s %16s %9s\n", "batch", "dyn range", "M-tile cyc/b", "Adyna cyc/b", "speedup")
	for _, bs := range []int{4, 16, 64, 128} {
		rc := rc
		rc.Batch = bs
		mt, err := adyna.Run(adyna.DesignMTile, "dpsnet", rc)
		if err != nil {
			log.Fatal(err)
		}
		ad, err := adyna.Run(adyna.DesignAdyna, "dpsnet", rc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %12d %16.0f %16.0f %8.2fx\n",
			bs, bs*64, mt.CyclesPerBatch(), ad.CyclesPerBatch(), ad.SpeedupOver(mt))
	}
	fmt.Println()
	fmt.Println("Larger batches fold more patches onto the dynamic dimension, widening")
	fmt.Println("the gap between the worst case (all patches) and the typical case")
	fmt.Println("(the informative patches) - which is exactly what Adyna exploits.")

	// Kernel budget: how many sampled kernels per operator does DPSNet need?
	fmt.Println()
	fmt.Printf("%-22s %16s\n", "kernels per operator", "Adyna cyc/batch")
	rc.Batch = 128
	for _, budget := range []int{1, 2, 4, 8, 16, 33} {
		r, err := adyna.RunWithKernelBudget(adyna.DesignAdyna, "dpsnet", rc, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22d %16.0f\n", budget, r.CyclesPerBatch())
	}
	fmt.Println()
	fmt.Println("A single kernel degenerates toward worst-case execution; a handful of")
	fmt.Println("well-sampled kernels recovers almost all of the benefit - the paper's")
	fmt.Println("motivation for multi-kernel sampling under the 25.6 kB on-chip budget.")
}
