// Patch selection at scale: DPSNet folds 64 patches per image onto the
// batch dimension, so at batch 128 the dynamic dimension reaches 8192 —
// the stress case for multi-kernel sampling. This example sweeps batch
// sizes (the paper's Figure 13 axis) and shows how Adyna's advantage over
// the worst-case M-tile baseline grows with batch size, then demonstrates
// the kernel-budget tradeoff of Section VII.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/adyna"
)

func main() {
	if err := run(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
}

// run performs the two sweeps; quick shrinks them to smoke-test size.
func run(w io.Writer, quick bool) error {
	rc := adyna.DefaultRunConfig()
	rc.Batches = 40
	rc.Warmup = 16
	sizes := []int{4, 16, 64, 128}
	budgets := []int{1, 2, 4, 8, 16, 33}
	budgetBatch := 128
	if quick {
		rc.Batches = 8
		rc.Warmup = 4
		sizes = []int{4, 16}
		budgets = []int{1, 4}
		budgetBatch = 16
	}

	fmt.Fprintln(w, "DPSNet (64 patches/image folded onto the batch dimension)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %12s %16s %16s %9s\n", "batch", "dyn range", "M-tile cyc/b", "Adyna cyc/b", "speedup")
	for _, bs := range sizes {
		rc := rc
		rc.Batch = bs
		mt, err := adyna.Run(adyna.DesignMTile, "dpsnet", rc)
		if err != nil {
			return err
		}
		ad, err := adyna.Run(adyna.DesignAdyna, "dpsnet", rc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %12d %16.0f %16.0f %8.2fx\n",
			bs, bs*64, mt.CyclesPerBatch(), ad.CyclesPerBatch(), ad.SpeedupOver(mt))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Larger batches fold more patches onto the dynamic dimension, widening")
	fmt.Fprintln(w, "the gap between the worst case (all patches) and the typical case")
	fmt.Fprintln(w, "(the informative patches) - which is exactly what Adyna exploits.")

	// Kernel budget: how many sampled kernels per operator does DPSNet need?
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s %16s\n", "kernels per operator", "Adyna cyc/batch")
	rc.Batch = budgetBatch
	for _, budget := range budgets {
		r, err := adyna.RunWithKernelBudget(adyna.DesignAdyna, "dpsnet", rc, budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22d %16.0f\n", budget, r.CyclesPerBatch())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "A single kernel degenerates toward worst-case execution; a handful of")
	fmt.Fprintln(w, "well-sampled kernels recovers almost all of the benefit - the paper's")
	fmt.Fprintln(w, "motivation for multi-kernel sampling under the 25.6 kB on-chip budget.")
	return nil
}
