// DSL workflow: define a DynNN in the textual model-description language
// (the Figure 4 "model parser"), schedule it, serialize both the graph and
// the compiled plan — kernels in their 128-byte on-chip format — and show
// that the deserialized artifacts simulate identically. This is the
// deployment pipeline a production user of the library would run: describe
// once, compile once, ship bytes.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/adyna"
)

const modelSrc = `
# An early-exit MLP: easy inputs leave after one block.
model exitnet units=1
input    tokens bytes=1536 max=64
seqmatmul b1    from=tokens seq=4 in=192 out=192
gate      g1    from=b1 feat=192 choices=2
switch    sw1   data=b1 mask=g1 branches=2
matmul    exit1 from=sw1:0 in=192 out=10
sink      done1 from=exit1
seqmatmul b2    from=sw1:1 seq=4 in=192 out=192
layernorm ln    from=b2 bytes=1536
matmul    head  from=ln in=192 out=10
output    yhat  from=head
`

func main() {
	// 1. Parse the description into a dynamic operator graph.
	g, err := adyna.ParseModel(modelSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d operators, %d dynamic, %d switches\n",
		g.Name, len(g.Ops), len(g.DynamicOps()), len(g.Switches()))

	// 2. Schedule it under the full Adyna policy.
	cfg := adyna.DefaultConfig()
	plan, err := adyna.Schedule(cfg, g, adyna.PolicyAdyna(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Serialize graph + plan: the deployable artifact.
	var gBytes, pBytes bytes.Buffer
	if err := adyna.EncodeGraph(&gBytes, g); err != nil {
		log.Fatal(err)
	}
	if err := plan.Encode(&pBytes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifact: %d graph bytes + %d plan bytes (incl. 128-byte kernels)\n",
		gBytes.Len(), pBytes.Len())

	// 4. On the "deployment" side: decode and run.
	g2, err := adyna.DecodeGraph(bytes.NewReader(gBytes.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	plan2, err := adyna.DecodePlan(bytes.NewReader(pBytes.Bytes()), g2)
	if err != nil {
		log.Fatal(err)
	}

	run := func(g *adyna.Graph, plan *adyna.Plan) int64 {
		m, err := adyna.NewMachine(cfg, g, adyna.MachineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if err := m.LoadPlan(plan); err != nil {
			log.Fatal(err)
		}
		// A fixed trace: half the batch exits early each time.
		sw := g.Switches()[0]
		var batches []adyna.Batch
		for i := 0; i < 10; i++ {
			var exit, cont []int
			for u := 0; u < 64; u++ {
				if (u+i)%2 == 0 {
					exit = append(exit, u)
				} else {
					cont = append(cont, u)
				}
			}
			batches = append(batches, adyna.Batch{
				Index: i, Units: 64,
				Routing: adyna.BatchRouting{sw: adyna.Routing{Branch: [][]int{exit, cont}}},
			})
		}
		if err := m.Run(batches); err != nil {
			log.Fatal(err)
		}
		return m.Stats().Cycles
	}
	orig := run(g, plan)
	dep := run(g2, plan2)
	fmt.Printf("original artifacts:     %d cycles\n", orig)
	fmt.Printf("deserialized artifacts: %d cycles\n", dep)
	if orig != dep {
		log.Fatal("round-tripped artifacts must simulate identically!")
	}
	fmt.Println("bit-identical execution after the byte round trip.")
}
