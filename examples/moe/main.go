// Mixture-of-experts load balancing: drive the Tutel-MoE workload, whose
// expert popularity drifts over time, and show how Adyna's periodic
// re-scheduling (frequency-weighted re-allocation plus kernel re-sampling)
// keeps up while a one-shot static schedule decays — the paper's runtime
// adjustment in action.
package main

import (
	"fmt"
	"log"

	"repro/adyna"
)

const (
	batch   = 128
	windows = 5
	perWin  = 40
	warmupN = 40
	seed    = 7
)

func main() {
	cfg := adyna.DefaultConfig()
	w, err := adyna.LoadModel("tutel-moe", batch)
	if err != nil {
		log.Fatal(err)
	}

	// One source drives both runs so they see identical expert routing.
	gen := func() []adyna.Batch {
		src := adyna.NewSource(seed)
		warm := w.GenTrace(src, warmupN, batch)
		meas := w.GenTrace(src, windows*perWin, batch)
		return append(warm, meas...)
	}

	run := func(pol adyna.Policy, resched bool) []float64 {
		wl, err := adyna.LoadModel("tutel-moe", batch) // fresh drift state
		if err != nil {
			log.Fatal(err)
		}
		m, err := adyna.NewMachine(cfg, wl.Graph, adyna.MachineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		trace := gen()
		for _, b := range trace[:warmupN] {
			units, err := wl.Graph.AssignUnits(b.Units, b.Routing)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.Profiler().ObserveBatch(units, b.Routing); err != nil {
				log.Fatal(err)
			}
		}
		plan, err := adyna.Schedule(cfg, wl.Graph, pol, m.Profiler())
		if err != nil {
			log.Fatal(err)
		}
		if err := m.LoadPlan(plan); err != nil {
			log.Fatal(err)
		}
		var out []float64
		prev := int64(0)
		for win := 0; win < windows; win++ {
			if win > 0 && resched {
				plan, err = adyna.Schedule(cfg, wl.Graph, pol, m.Profiler())
				if err != nil {
					log.Fatal(err)
				}
				if err := m.LoadPlan(plan); err != nil {
					log.Fatal(err)
				}
				m.Profiler().Reset()
			}
			lo := warmupN + win*perWin
			if err := m.Run(trace[lo : lo+perWin]); err != nil {
				log.Fatal(err)
			}
			c := m.Stats().Cycles
			out = append(out, float64(c-prev)/perWin)
			prev = c
		}
		return out
	}

	static := run(adyna.PolicyAdynaStatic(), false)
	dynamic := run(adyna.PolicyAdyna(), true)

	fmt.Printf("Tutel-MoE (8 experts, top-2, drifting popularity), batch %d:\n\n", batch)
	fmt.Printf("%-8s %18s %18s %10s\n", "window", "static cyc/batch", "adaptive cyc/batch", "gain")
	for i := range static {
		fmt.Printf("%-8d %18.0f %18.0f %9.1f%%\n",
			i+1, static[i], dynamic[i], 100*(static[i]/dynamic[i]-1))
	}
	var s1, s2 float64
	for i := range static {
		s1 += static[i]
		s2 += dynamic[i]
	}
	fmt.Printf("\noverall: adaptive re-scheduling is %.2fx faster as the expert\n", s1/s2)
	fmt.Println("distribution wanders away from the initial profile. (The gain grows")
	fmt.Println("with later windows - the static plan's allocation is increasingly stale.)")
}
