// Quickstart: define a custom dynamic neural network with the switch/merge
// operators of Adyna's unified representation, verify functionally that
// dynamic routing is lossless, then schedule it and simulate it on the
// Adyna accelerator against the static M-tile baseline.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/adyna"
)

func main() {
	if err := run(os.Stdout, 30); err != nil {
		log.Fatal(err)
	}
}

// run executes the whole walkthrough, simulating nBatches trace batches in
// step 3 (the demo uses 30; tests shrink it).
func run(w io.Writer, nBatches int) error {
	// 1. Build a small layer-skipping network: a gate decides per sample
	//    whether to run one conv (cheap path) or two convs (full path).
	const batch = 32
	b := adyna.NewGraphBuilder("demo-skipblock", 1)
	cs := adyna.ConvSpec{InC: 32, OutC: 32, H: 16, W: 16, R: 3, S: 3, Stride: 1, Pad: 1}
	in := b.Input("images", int64(32*16*16*2), batch)
	gate := b.Gate("gate", in, 32, 2)
	branches := b.Switch("route", in, gate, 2)
	cheap := b.Conv2D("cheap_conv", branches[0], cs)
	full1 := b.Conv2D("full_conv1", branches[1], cs)
	full2 := b.Conv2D("full_conv2", full1, cs)
	merged := b.Merge("merge", branches, cheap, full2)
	logits := b.MatMul("classifier", merged, 32*16*16, 10)
	b.Output("predictions", logits)

	// Attach tiny reference implementations so the graph can execute on
	// real tensors (scaling stands in for the convolutions).
	scale := func(f float32) func([]*adyna.Tensor) (*adyna.Tensor, error) {
		return func(ins []*adyna.Tensor) (*adyna.Tensor, error) {
			out := ins[0].Clone()
			for i := range out.Data {
				out.Data[i] *= f
			}
			return out, nil
		}
	}
	b.SetRef(gate, scale(1))
	b.SetRef(cheap, scale(-1)) // cheap path negates
	b.SetRef(full1, scale(2))  // full path quadruples
	b.SetRef(full2, scale(2))
	b.SetRef(logits, scale(1))

	g, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "built %q: %d operators, %d switches, worst case %.2f GMACs/batch\n",
		g.Name, len(g.Ops), len(g.Switches()), float64(g.MaxMACsPerBatch())/1e9)

	// 2. Route a batch: even samples take the cheap path, odd ones the full
	//    path — and verify functionally that every sample comes out with
	//    exactly its own branch's transformation.
	sw := g.Switches()[0]
	var cheapIdx, fullIdx []int
	for i := 0; i < batch; i++ {
		if i%2 == 0 {
			cheapIdx = append(cheapIdx, i)
		} else {
			fullIdx = append(fullIdx, i)
		}
	}
	rt := adyna.BatchRouting{sw: adyna.Routing{Branch: [][]int{cheapIdx, fullIdx}}}
	input := adyna.NewTensor(batch, 32*16*16)
	for i := range input.Data {
		input.Data[i] = 1
	}
	res, err := g.Execute(input, rt)
	if err != nil {
		return err
	}
	out := res.Outputs[g.Outputs()[0]]
	fmt.Fprintf(w, "functional check: sample 0 (cheap) -> %v, sample 1 (full) -> %v\n",
		out.At(0, 0), out.At(1, 0))
	if out.At(0, 0) != -1 || out.At(1, 0) != 4 {
		return fmt.Errorf("routing was not lossless: got %v and %v", out.At(0, 0), out.At(1, 0))
	}

	// 3. Schedule and simulate: Adyna's multi-kernel plan vs the worst-case
	//    static M-tile plan, over the same randomly routed trace.
	cfg := adyna.DefaultConfig()
	wk, err := adyna.LoadModel("skipnet", 64)
	if err != nil {
		return err
	}
	src := adyna.NewSource(42)
	trace := wk.GenTrace(src, nBatches, 64)
	warm := len(trace) / 3

	runPlan := func(pol adyna.Policy) (int64, error) {
		m, err := adyna.NewMachine(cfg, wk.Graph, adyna.MachineOptions{})
		if err != nil {
			return 0, err
		}
		// Warm the profiler so frequency-weighted allocation has data.
		for _, b := range trace[:warm] {
			units, err := wk.Graph.AssignUnits(b.Units, b.Routing)
			if err != nil {
				return 0, err
			}
			if err := m.Profiler().ObserveBatch(units, b.Routing); err != nil {
				return 0, err
			}
		}
		plan, err := adyna.Schedule(cfg, wk.Graph, pol, m.Profiler())
		if err != nil {
			return 0, err
		}
		if err := m.LoadPlan(plan); err != nil {
			return 0, err
		}
		if err := m.Run(trace[warm:]); err != nil {
			return 0, err
		}
		return m.Stats().Cycles, nil
	}
	mtile, err := runPlan(adyna.PolicyMTile())
	if err != nil {
		return err
	}
	ad, err := runPlan(adyna.PolicyAdyna())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "simulated SkipNet (batch 64, %d batches): M-tile %d cycles, Adyna %d cycles -> %.2fx speedup\n",
		len(trace)-warm, mtile, ad, float64(mtile)/float64(ad))
	return nil
}
