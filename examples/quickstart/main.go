// Quickstart: define a custom dynamic neural network with the switch/merge
// operators of Adyna's unified representation, verify functionally that
// dynamic routing is lossless, then schedule it and simulate it on the
// Adyna accelerator against the static M-tile baseline.
package main

import (
	"fmt"
	"log"

	"repro/adyna"
)

func main() {
	// 1. Build a small layer-skipping network: a gate decides per sample
	//    whether to run one conv (cheap path) or two convs (full path).
	const batch = 32
	b := adyna.NewGraphBuilder("demo-skipblock", 1)
	cs := adyna.ConvSpec{InC: 32, OutC: 32, H: 16, W: 16, R: 3, S: 3, Stride: 1, Pad: 1}
	in := b.Input("images", int64(32*16*16*2), batch)
	gate := b.Gate("gate", in, 32, 2)
	branches := b.Switch("route", in, gate, 2)
	cheap := b.Conv2D("cheap_conv", branches[0], cs)
	full1 := b.Conv2D("full_conv1", branches[1], cs)
	full2 := b.Conv2D("full_conv2", full1, cs)
	merged := b.Merge("merge", branches, cheap, full2)
	logits := b.MatMul("classifier", merged, 32*16*16, 10)
	b.Output("predictions", logits)

	// Attach tiny reference implementations so the graph can execute on
	// real tensors (scaling stands in for the convolutions).
	scale := func(f float32) func([]*adyna.Tensor) (*adyna.Tensor, error) {
		return func(ins []*adyna.Tensor) (*adyna.Tensor, error) {
			out := ins[0].Clone()
			for i := range out.Data {
				out.Data[i] *= f
			}
			return out, nil
		}
	}
	b.SetRef(gate, scale(1))
	b.SetRef(cheap, scale(-1)) // cheap path negates
	b.SetRef(full1, scale(2))  // full path quadruples
	b.SetRef(full2, scale(2))
	b.SetRef(logits, scale(1))

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %q: %d operators, %d switches, worst case %.2f GMACs/batch\n",
		g.Name, len(g.Ops), len(g.Switches()), float64(g.MaxMACsPerBatch())/1e9)

	// 2. Route a batch: even samples take the cheap path, odd ones the full
	//    path — and verify functionally that every sample comes out with
	//    exactly its own branch's transformation.
	sw := g.Switches()[0]
	var cheapIdx, fullIdx []int
	for i := 0; i < batch; i++ {
		if i%2 == 0 {
			cheapIdx = append(cheapIdx, i)
		} else {
			fullIdx = append(fullIdx, i)
		}
	}
	rt := adyna.BatchRouting{sw: adyna.Routing{Branch: [][]int{cheapIdx, fullIdx}}}
	input := adyna.NewTensor(batch, 32*16*16)
	for i := range input.Data {
		input.Data[i] = 1
	}
	res, err := g.Execute(input, rt)
	if err != nil {
		log.Fatal(err)
	}
	out := res.Outputs[g.Outputs()[0]]
	fmt.Printf("functional check: sample 0 (cheap) -> %v, sample 1 (full) -> %v\n",
		out.At(0, 0), out.At(1, 0))
	if out.At(0, 0) != -1 || out.At(1, 0) != 4 {
		log.Fatal("routing was not lossless!")
	}

	// 3. Schedule and simulate: Adyna's multi-kernel plan vs the worst-case
	//    static M-tile plan, over the same randomly routed trace.
	cfg := adyna.DefaultConfig()
	w, err := adyna.LoadModel("skipnet", 64)
	if err != nil {
		log.Fatal(err)
	}
	src := adyna.NewSource(42)
	trace := w.GenTrace(src, 30, 64)

	runPlan := func(pol adyna.Policy) int64 {
		m, err := adyna.NewMachine(cfg, w.Graph, adyna.MachineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		// Warm the profiler so frequency-weighted allocation has data.
		for _, b := range trace[:10] {
			units, err := w.Graph.AssignUnits(b.Units, b.Routing)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.Profiler().ObserveBatch(units, b.Routing); err != nil {
				log.Fatal(err)
			}
		}
		plan, err := adyna.Schedule(cfg, w.Graph, pol, m.Profiler())
		if err != nil {
			log.Fatal(err)
		}
		if err := m.LoadPlan(plan); err != nil {
			log.Fatal(err)
		}
		if err := m.Run(trace[10:]); err != nil {
			log.Fatal(err)
		}
		return m.Stats().Cycles
	}
	mtile := runPlan(adyna.PolicyMTile())
	ad := runPlan(adyna.PolicyAdyna())
	fmt.Printf("simulated SkipNet (batch 64, 20 batches): M-tile %d cycles, Adyna %d cycles -> %.2fx speedup\n",
		mtile, ad, float64(mtile)/float64(ad))
}
