package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartRuns executes the full walkthrough — graph build, lossless
// routing check, schedule + simulate — on a shortened trace.
func TestQuickstartRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 9); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"built \"demo-skipblock\"", "functional check", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
