// Early-exit serving: run the PABEE early-exiting BERT workload across all
// accelerator designs under the same trace and compare latency, utilization
// and energy — the memory-bound NLP case of the paper's evaluation, where
// M-tenant's lack of inter-operator pipelining hurts most.
package main

import (
	"fmt"
	"log"

	"repro/adyna"
)

func main() {
	rc := adyna.DefaultRunConfig()
	rc.Batch = 64
	rc.Batches = 60
	rc.Warmup = 20

	designs := []adyna.Design{
		adyna.DesignGPU, adyna.DesignMTile, adyna.DesignMTenant,
		adyna.DesignAdynaStatic, adyna.DesignAdyna,
	}
	results, err := adyna.RunAll(designs, "pabee", rc)
	if err != nil {
		log.Fatal(err)
	}

	base := results[adyna.DesignMTile]
	fmt.Printf("PABEE (BERT-base early exit), batch %d, %d batches:\n\n", rc.Batch, rc.Batches)
	fmt.Printf("%-15s %14s %9s %8s %8s %12s\n", "design", "cycles/batch", "speedup", "PE util", "BW util", "energy (mJ)")
	for _, d := range designs {
		r := results[d]
		e := adyna.EnergyOf(r)
		fmt.Printf("%-15s %14.0f %8.2fx %7.1f%% %7.1f%% %12.1f\n",
			string(d), r.CyclesPerBatch(), r.SpeedupOver(base),
			r.PEUtil*100, r.HBMUtil*100, e.Total()/float64(r.Batches))
	}

	// Show what the samples actually did: the exit-layer distribution of the
	// generated trace.
	w, err := adyna.LoadModel("pabee", rc.Batch)
	if err != nil {
		log.Fatal(err)
	}
	src := adyna.NewSource(rc.Seed)
	trace := w.GenTrace(src, 40, rc.Batch)
	exits := make([]int, 13)
	for _, b := range trace {
		alive := rc.Batch
		for l, sw := range w.Graph.Switches() {
			r := b.Routing[sw]
			exits[l+1] += len(r.Branch[0])
			alive = len(r.Branch[1])
		}
		exits[12] += alive
	}
	fmt.Printf("\nexit-layer distribution over %d samples:\n", 40*rc.Batch)
	total := 40 * rc.Batch
	for l := 1; l <= 12; l++ {
		bar := ""
		frac := float64(exits[l]) / float64(total)
		for i := 0; i < int(frac*200); i++ {
			bar += "#"
		}
		fmt.Printf("  layer %2d: %5.1f%% %s\n", l, frac*100, bar)
	}
	fmt.Println("\nEarly exits shrink the deeper layers' dyn values; Adyna's multi-kernel")
	fmt.Println("selection sizes each layer's kernels to the surviving population instead")
	fmt.Println("of the worst case.")
}
